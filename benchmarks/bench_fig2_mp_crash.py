"""Fig. 2 -- MP/CR: the six region panels at n = 64, plus validation.

Paper shape being reproduced (n = 64):

* SV1: impossible everywhere (Lemma 3.5);
* SV2: solvable below t = (k-1)n/(2k) (PROTOCOL B), impossible from
  t = kn/(2k+1), a gap band between (Lemmas 3.8, 3.6);
* RV1/WV1: the classical t < k diagonal (Lemmas 3.1/3.2/3.4);
* RV2/WV2: solvable below t = (k-1)n/k (PROTOCOL A), impossible above,
  with isolated open points exactly where k divides n (Lemmas 3.7, 3.3).
"""

from fractions import Fraction

from figure_common import (
    assert_frontier_monotone,
    frontier_series,
    print_figure_summary,
    run_empirical_validation,
    write_figure_artifacts,
)
from repro.core.regions import region_map
from repro.core.solvability import Solvability
from repro.core.validity import RV1, RV2, SV1, SV2, WV1, WV2
from repro.models import Model

MODEL = Model.MP_CR
N = 64


def test_fig2_analytic_regions(benchmark):
    path = benchmark.pedantic(
        write_figure_artifacts, args=(MODEL, N), rounds=1, iterations=1
    )
    assert path.exists()
    assert_frontier_monotone(MODEL, N)
    print_figure_summary(MODEL, N)

    # RV1 / WV1: the t < k diagonal.
    for validity in (RV1, WV1):
        series = frontier_series(MODEL, validity, N)
        for k, entry in series.items():
            assert entry["max_possible_t"] == k - 1
            assert entry["min_impossible_t"] == k

    # RV2 / WV2: frontier at t = (k-1)n/k, open exactly when k | n.
    for validity in (RV2, WV2):
        series = frontier_series(MODEL, validity, N)
        for k, entry in series.items():
            bound = Fraction((k - 1) * N, k)
            if bound.denominator == 1:  # k divides (k-1)n  <=>  k | n here
                assert entry["open_count"] == 1, (validity.code, k)
                assert entry["max_possible_t"] == int(bound) - 1
            else:
                assert entry["open_count"] == 0, (validity.code, k)
                assert entry["max_possible_t"] == int(bound)

    # SV2: PROTOCOL B up to (k-1)n/2k; impossibility from kn/(2k+1);
    # the open band between the two holds exactly the integers in the
    # rational gap (it narrows to nothing as k -> n).
    series = frontier_series(MODEL, SV2, N)
    for k, entry in series.items():
        lower = Fraction((k - 1) * N, 2 * k)
        upper = Fraction(k * N, 2 * k + 1)
        assert entry["max_possible_t"] < upper
        assert entry["max_possible_t"] >= int(lower) - 1
        assert entry["min_impossible_t"] > entry["max_possible_t"]
        assert entry["open_count"] == (
            entry["min_impossible_t"] - entry["max_possible_t"] - 1
        )
    # the band is non-trivial for small k (the paper's visible gap)
    assert series[2]["open_count"] >= 5

    # SV1: no solvable point at all.
    region = region_map(MODEL, SV1, N)
    assert region.count(Solvability.POSSIBLE) == 0


def test_fig2_empirical_validation(benchmark):
    validation = benchmark.pedantic(
        run_empirical_validation, args=(MODEL,), rounds=1, iterations=1
    )
    print(f"\nFig. 2 possible-side sweeps ({len(validation.sweeps)} points):")
    for stats in validation.sweeps:
        print(f"  {stats.summary()}")
    print("Fig. 2 impossible-side constructions:")
    for result in validation.constructions:
        print(f"  {result.summary()}")
