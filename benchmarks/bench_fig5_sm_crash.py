"""Fig. 5 -- SM/CR: the six region panels at n = 64, plus validation.

Paper shape being reproduced (n = 64):

* RV2 and WV2: solvable *everywhere* -- PROTOCOL E is wait-free
  (Lemma 4.5); this is the starkest divergence from message passing,
  where the same conditions die at t = (k-1)n/k;
* SV2: PROTOCOL F extends solvability to all k > t + 1, far beyond the
  simulated PROTOCOL B region; impossible for t >= n/2, t >= k
  (Lemmas 4.7, 4.6, 4.3);
* RV1/WV1: the t < k diagonal again (Lemmas 4.4, 3.2, 4.1);
* SV1: impossible everywhere (Lemma 4.2).
"""

from figure_common import (
    assert_frontier_monotone,
    frontier_series,
    print_figure_summary,
    run_empirical_validation,
    write_figure_artifacts,
)
from repro.core.regions import region_map
from repro.core.solvability import Solvability
from repro.core.validity import RV1, RV2, SV1, SV2, WV1, WV2
from repro.models import Model

MODEL = Model.SM_CR
N = 64


def test_fig5_analytic_regions(benchmark):
    path = benchmark.pedantic(
        write_figure_artifacts, args=(MODEL, N), rounds=1, iterations=1
    )
    assert path.exists()
    assert_frontier_monotone(MODEL, N)
    print_figure_summary(MODEL, N)

    # RV2 / WV2: the whole grid is solvable.
    for validity in (RV2, WV2):
        region = region_map(MODEL, validity, N)
        assert region.count(Solvability.POSSIBLE) == len(region.grid)

    # SV2: k > t + 1 everywhere; for k <= t + 1 only PROTOCOL B's band.
    region = region_map(MODEL, SV2, N)
    for t in (10, 31, 50, 64):
        if t + 2 <= N - 1:
            assert region.status(t + 2, t) is Solvability.POSSIBLE
    assert region.status(30, 32) is Solvability.IMPOSSIBLE  # t>=n/2, t>=k
    assert region.status(2, 15) is Solvability.POSSIBLE     # PROTOCOL B band
    assert region.status(2, 20) is Solvability.OPEN         # the gap

    # RV1 / WV1 diagonal.
    for validity in (RV1, WV1):
        series = frontier_series(MODEL, validity, N)
        for k, entry in series.items():
            assert entry["max_possible_t"] == k - 1
            assert entry["min_impossible_t"] == k

    # SV1 barren.
    region = region_map(MODEL, SV1, N)
    assert region.count(Solvability.POSSIBLE) == 0

    # The model-separation headline: a point impossible in MP/CR but
    # solvable here (shared memory strictly helps for RV2).
    mp = region_map(Model.MP_CR, RV2, N, k_values=[2], t_values=[40])
    sm = region_map(MODEL, RV2, N, k_values=[2], t_values=[40])
    assert mp.status(2, 40) is Solvability.IMPOSSIBLE
    assert sm.status(2, 40) is Solvability.POSSIBLE


def test_fig5_empirical_validation(benchmark):
    validation = benchmark.pedantic(
        run_empirical_validation, args=(MODEL,), rounds=1, iterations=1
    )
    print(f"\nFig. 5 possible-side sweeps ({len(validation.sweeps)} points):")
    for stats in validation.sweeps:
        print(f"  {stats.summary()}")
    print("Fig. 5 impossible-side constructions:")
    for result in validation.constructions:
        print(f"  {result.summary()}")
