# Convenience targets for the k-set consensus reproduction.

PYTHON ?= python

.PHONY: install test lint staticcheck-flow bench bench-throughput bench-exhaustive figures experiments examples all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# ruff/mypy are optional-dependency extras ([project.optional-dependencies]
# lint); skip gracefully when absent so `make lint` works in the offline
# dev container, where only the staticcheck gate (stdlib-only) is enforced.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "lint: ruff not installed, skipping (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping (pip install -e .[lint])"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro staticcheck src --strict

# The interprocedural pass on its own (the per-file rules still run;
# --flow merely makes the default explicit).  `make lint` already
# includes it -- this target exists for iterating on FLOW rules.
staticcheck-flow:
	PYTHONPATH=src $(PYTHON) -m repro staticcheck src --strict --flow

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-throughput:
	$(PYTHON) benchmarks/bench_sweep_throughput.py

bench-exhaustive:
	$(PYTHON) benchmarks/bench_exhaustive_explorer.py

figures:
	$(PYTHON) examples/figure_gallery.py --n 64 --outdir figures

experiments:
	$(PYTHON) -m repro.analysis.report > EXPERIMENTS.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/byzantine_config_rollout.py
	$(PYTHON) examples/shared_memory_shortlist.py
	$(PYTHON) examples/asyncio_backend.py
	$(PYTHON) examples/verification_lab.py
	$(PYTHON) examples/open_gap_expedition.py

all: install test bench

clean:
	rm -rf benchmarks/out figures .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
