# Convenience targets for the k-set consensus reproduction.

PYTHON ?= python

.PHONY: install test bench bench-throughput figures experiments examples all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-throughput:
	$(PYTHON) benchmarks/bench_sweep_throughput.py

figures:
	$(PYTHON) examples/figure_gallery.py --n 64 --outdir figures

experiments:
	$(PYTHON) -m repro.analysis.report > EXPERIMENTS.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/byzantine_config_rollout.py
	$(PYTHON) examples/shared_memory_shortlist.py
	$(PYTHON) examples/asyncio_backend.py
	$(PYTHON) examples/verification_lab.py
	$(PYTHON) examples/open_gap_expedition.py

all: install test bench

clean:
	rm -rf benchmarks/out figures .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
