"""Differential correctness of the vectorized batch engine.

The load-bearing contract: for every spec the engine models, replaying
its exact plan (inputs, crash points, delivery order) through the real
discrete-event kernel reproduces every run's decisions, crash set, and
verdicts.  The tests sweep the whole ``BATCH_FAMILIES`` registry and
the fault-budget edges ``t = 0`` and ``t = n - 1``.
"""

import dataclasses

import numpy as np
import pytest

from repro.batch import (
    BATCH_FAMILIES,
    batch_run,
    batch_sweep,
    batch_vs_replay,
    supports_point,
    supports_spec,
    sweep_unsupported_reason,
)
from repro.harness.sweep import SweepConfig
from repro.protocols.base import get_spec

RUNS = 8


def _solvable_point(spec):
    for n, k, t in (
        (6, 3, 2), (6, 2, 1), (5, 2, 1), (4, 2, 0), (6, 6, 2), (4, 4, 3)
    ):
        if spec.solvable(n, k, t) and supports_point(spec, n, k, t):
            return n, k, t
    raise AssertionError(f"no test point for {spec.name}")


def _assert_equivalent(spec, n, k, t, runs=RUNS, seed=23):
    config = SweepConfig(runs=runs, seed=seed)
    batch, scalar, mismatched, details = batch_vs_replay(
        spec, n, k, t, config
    )
    assert mismatched == 0, "\n".join(details)
    assert batch.decisions_histogram == scalar.decisions_histogram
    assert len(batch.violations) == len(scalar.violations)


class TestRegistryEquivalence:
    @pytest.mark.parametrize("spec_name", sorted(BATCH_FAMILIES))
    def test_batch_matches_scalar_replay(self, spec_name):
        spec = get_spec(spec_name)
        n, k, t = _solvable_point(spec)
        _assert_equivalent(spec, n, k, t)

    def test_edge_t_zero(self):
        _assert_equivalent(get_spec("chaudhuri@mp-cr"), 5, 2, 0)

    def test_edge_t_n_minus_one(self):
        _assert_equivalent(get_spec("protocol-a@mp-cr"), 5, 3, 4)
        _assert_equivalent(get_spec("trivial@mp-byz"), 4, 4, 3)

    def test_violating_region_matches_run_by_run(self):
        # Outside the solvable region violations must appear in the
        # SAME runs with the SAME violated conditions on both engines.
        spec = get_spec("chaudhuri@mp-cr")
        config = SweepConfig(runs=24, seed=5)
        batch, scalar, mismatched, details = batch_vs_replay(
            spec, 6, 2, 3, config
        )
        assert mismatched == 0, "\n".join(details)
        assert [
            (v.run_index, v.conditions) for v in batch.violations
        ] == [
            (v.run_index, v.conditions) for v in scalar.violations
        ]


class TestBatchRun:
    def test_reproducible_across_batch_sizes(self):
        spec = get_spec("protocol-b@mp-cr")
        config = SweepConfig(runs=12, seed=77)
        whole = batch_run(spec, 6, 3, 2, config)
        head = batch_run(spec, 6, 3, 2, config, indices=range(5))
        tail = batch_run(spec, 6, 3, 2, config, indices=range(5, 12))
        assert np.array_equal(
            whole.decisions, np.concatenate([head.decisions, tail.decisions])
        )
        assert np.array_equal(
            whole.faulty, np.concatenate([head.faulty, tail.faulty])
        )

    def test_chunking_is_invisible(self, monkeypatch):
        import repro.batch.engine as engine_mod

        spec = get_spec("chaudhuri@mp-cr")
        config = SweepConfig(runs=10, seed=13)
        one_chunk = batch_run(spec, 5, 2, 1, config)
        monkeypatch.setattr(engine_mod, "_CHUNK_ELEMENTS", 3 * 5 * 5)
        chunked = batch_run(spec, 5, 2, 1, config)
        assert np.array_equal(one_chunk.decisions, chunked.decisions)
        assert np.array_equal(one_chunk.distinct, chunked.distinct)
        assert one_chunk.stats().decisions_histogram == \
            chunked.stats().decisions_histogram

    def test_unsupported_point_raises(self):
        with pytest.raises(ValueError):
            batch_run(get_spec("protocol-e@sm-cr"), 4, 2, 1)

    def test_stats_shape(self):
        stats = batch_sweep(
            get_spec("protocol-a@mp-cr"), 6, 3, 3, SweepConfig(runs=6, seed=2)
        )
        assert stats.engine == "batch"
        assert stats.runs == 6
        assert "vectorized batch of 6 runs" in stats.execution
        assert sum(stats.decisions_histogram.values()) == 6


class TestSupport:
    def test_supports_spec_registry(self):
        assert supports_spec(get_spec("protocol-a@mp-cr"))
        assert not supports_spec(get_spec("protocol-e@sm-cr"))

    def test_protocol_c_outside_region_unsupported(self):
        spec = get_spec("protocol-c@mp-byz")
        # PROTOCOL C's make() requires a feasible echo threshold ell;
        # points without one must be reported unsupported, not crash.
        assert supports_point(spec, 6, 2, 1)
        assert not supports_point(spec, 6, 3, 2)

    def test_sweep_reasons(self):
        config = SweepConfig(runs=4)
        assert sweep_unsupported_reason(
            get_spec("chaudhuri@mp-cr"), 5, 2, 1, config
        ) is None
        assert "shared-memory" in sweep_unsupported_reason(
            get_spec("protocol-e@sm-cr"), 4, 2, 1, config
        )
        unregistered = dataclasses.replace(
            get_spec("chaudhuri@mp-cr"), name="chaudhuri-batch-probe"
        )
        assert "no batch kernel" in sweep_unsupported_reason(
            unregistered, 5, 2, 1, config
        )
        assert "Byzantine" in sweep_unsupported_reason(
            get_spec("protocol-c@mp-byz"), 6, 3, 2, config
        )
        assert "oracle" in sweep_unsupported_reason(
            get_spec("chaudhuri@mp-cr"), 5, 2, 1,
            SweepConfig(runs=4, verify=True),
        )
