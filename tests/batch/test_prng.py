"""Tests for the batch engine's counter-mode PRNG.

Two properties carry the engine's reproducibility story:

* **attribution** -- per-run seeds are exactly
  ``derive_seed(sweep_seed, run_index)``, so any batch run can be named
  and re-derived in isolation;
* **chunk invariance** -- every draw is a pure function of
  ``(run_seed, stream, position)``, so splitting a batch into chunks
  (or resizing batches) can never change a single drawn value.
"""

import numpy as np

from repro.batch.prng import (
    STREAM_ARRIVAL,
    STREAM_INPUT,
    mix64,
    run_seeds,
    stream_u64,
    u01,
)
from repro.harness.parallel import derive_seed


class TestRunSeeds:
    def test_matches_derive_seed_per_index(self):
        seeds = run_seeds(42, range(10))
        for index, seed in enumerate(seeds):
            assert int(seed) == derive_seed(42, index)

    def test_pinned_value(self):
        # Same guard as TestDeriveSeed.test_pinned_value: recorded
        # batch artifacts go stale if the mixing scheme drifts.
        assert int(run_seeds(7, [3])[0]) == derive_seed(7, 3)
        assert int(run_seeds(1, [0])[0]) == 3658947764513767205

    def test_dtype_and_shape(self):
        seeds = run_seeds(7, range(5))
        assert seeds.dtype == np.uint64
        assert seeds.shape == (5,)


class TestStreams:
    def test_chunk_invariance(self):
        seeds = run_seeds(3, range(12))
        whole = stream_u64(seeds, STREAM_ARRIVAL, (4, 4))
        parts = np.concatenate([
            stream_u64(seeds[:5], STREAM_ARRIVAL, (4, 4)),
            stream_u64(seeds[5:], STREAM_ARRIVAL, (4, 4)),
        ])
        assert np.array_equal(whole, parts)

    def test_streams_are_independent(self):
        seeds = run_seeds(3, range(8))
        a = stream_u64(seeds, STREAM_INPUT, (6,))
        b = stream_u64(seeds, STREAM_ARRIVAL, (6,))
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        seeds = run_seeds(9, range(4))
        assert np.array_equal(
            stream_u64(seeds, STREAM_INPUT, (3,)),
            stream_u64(seeds, STREAM_INPUT, (3,)),
        )

    def test_mix64_is_a_bijection_sample(self):
        xs = np.arange(1, 1 << 12, dtype=np.uint64)
        assert len(np.unique(mix64(xs))) == len(xs)

    def test_u01_range(self):
        seeds = run_seeds(5, range(16))
        values = u01(stream_u64(seeds, STREAM_INPUT, (8,)))
        assert float(values.min()) >= 0.0
        assert float(values.max()) < 1.0
