"""Tests for batch plan construction (struct-of-arrays run plans)."""

import numpy as np
import pytest

from repro.batch.plan import (
    DEFAULT_CODE,
    build_plan,
    concat_plans,
    decode_code,
)


def _plan(indices=range(16), n=5, t=2, seed=11):
    return build_plan("protocol-a@mp-cr", n, 2, t, seed, indices)


class TestBuildPlan:
    def test_shapes_and_dtypes(self):
        plan = _plan()
        assert plan.batch_size == 16
        assert plan.input_codes.shape == (16, 5)
        assert plan.victim.shape == (16, 5)
        assert plan.arrival_keys.shape == (16, 5, 5)
        assert plan.accept_keys.shape == (16, 5, 5)
        assert plan.input_codes.dtype == np.int64
        assert plan.victim.dtype == np.bool_
        assert plan.arrival_keys.dtype == np.uint64

    def test_crash_masks_partition_victims(self):
        plan = _plan(range(64))
        # pre_crash and send_victim partition the victim set...
        assert not (plan.pre_crash & plan.send_victim).any()
        assert np.array_equal(plan.pre_crash | plan.send_victim, plan.victim)
        # ...and never exceed the fault budget t.
        assert int(plan.victim.sum(axis=1).max()) <= 2
        assert (0 <= plan.send_point).all() and (plan.send_point < 5).all()

    def test_t_zero_plans_no_victims(self):
        plan = build_plan("protocol-a@mp-cr", 5, 2, 0, 11, range(32))
        assert not plan.victim.any()

    def test_batch_size_invariance(self):
        # The same global run index yields bit-identical plan rows no
        # matter how runs are batched or chunked.
        whole = _plan(range(12))
        parts = concat_plans([_plan(range(5)), _plan(range(5, 12))])
        for field in (
            "indices", "run_seeds", "pattern_index", "input_codes",
            "victim", "pre_crash", "send_victim", "send_point",
            "arrival_keys", "accept_keys",
        ):
            assert np.array_equal(
                getattr(whole, field), getattr(parts, field)
            ), field

    def test_guards(self):
        with pytest.raises(ValueError):
            build_plan("protocol-a@mp-cr", 5, 2, 5, 11, range(4))  # t >= n
        with pytest.raises(ValueError):
            build_plan("protocol-a@mp-cr", 1000, 2, 1, 11, range(4))


class TestDecodeCode:
    def test_round_trips_value_space(self):
        assert decode_code("distinct", DEFAULT_CODE) is not None
        assert decode_code("distinct", 3) == "v003"
        assert decode_code("random", 1004) == "w004"
        assert decode_code("two-valued", 0) == "alpha"
        assert decode_code("two-valued", 1) == "beta"
