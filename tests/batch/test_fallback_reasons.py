"""The scalar-fallback reason codes: a closed, machine-readable vocabulary.

Every way an ``--engine auto`` sweep can fall back to the scalar engine
must (a) emit a reason whose ``.code`` is in
:data:`repro.batch.FALLBACK_REASON_CODES` and (b) land machine-readably
in :attr:`SweepStats.fallback_reason`, so result-file consumers and the
CLI echo never have to parse prose.
"""

import dataclasses

import pytest

from repro.batch import (
    FALLBACK_REASON_CODES,
    UnsupportedReason,
    sweep_unsupported_reason,
)
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import get_spec

CONFIG = SweepConfig(runs=4)


def _reason(spec_name, n, k, t, config=CONFIG, spec=None):
    return sweep_unsupported_reason(
        spec if spec is not None else get_spec(spec_name), n, k, t, config
    )


class TestReasonCodes:
    """Each fallback path emits its documented code."""

    def test_supported_point_has_no_reason(self):
        assert _reason("chaudhuri@mp-cr", 5, 2, 1) is None

    def test_sm_spec(self):
        reason = _reason("protocol-e@sm-cr", 4, 2, 1)
        assert reason.code == "sm-spec"

    def test_no_kernel(self):
        probe = dataclasses.replace(
            get_spec("chaudhuri@mp-cr"), name="chaudhuri-fallback-probe"
        )
        assert _reason(None, 5, 2, 1, spec=probe).code == "no-kernel"

    def test_byzantine_model(self):
        reason = _reason("protocol-c@mp-byz", 6, 3, 2)
        assert reason.code == "byzantine-model"

    def test_unsupported_point(self):
        # t >= n is outside every kernel's support envelope
        reason = _reason("chaudhuri@mp-cr", 5, 2, 5)
        assert reason.code == "unsupported-point"

    def test_verify_oracles(self):
        reason = _reason(
            "chaudhuri@mp-cr", 5, 2, 1, SweepConfig(runs=4, verify=True)
        )
        assert reason.code == "verify-oracles"

    def test_unknown_patterns(self):
        config = SweepConfig(runs=4, input_patterns=("distinct", "weird"))
        reason = _reason("chaudhuri@mp-cr", 5, 2, 1, config)
        assert reason.code == "unknown-patterns"

    def test_every_emitted_code_is_in_the_vocabulary(self):
        cases = [
            _reason("protocol-e@sm-cr", 4, 2, 1),
            _reason("protocol-c@mp-byz", 6, 3, 2),
            _reason("chaudhuri@mp-cr", 5, 2, 5),
            _reason("chaudhuri@mp-cr", 5, 2, 1,
                    SweepConfig(runs=4, verify=True)),
            _reason("chaudhuri@mp-cr", 5, 2, 1,
                    SweepConfig(runs=4, input_patterns=("weird",))),
        ]
        assert all(r.code in FALLBACK_REASON_CODES for r in cases)

    def test_reason_still_reads_as_its_message(self):
        # UnsupportedReason must stay substring-compatible with the
        # prose the execution field always carried.
        reason = _reason("protocol-e@sm-cr", 4, 2, 1)
        assert isinstance(reason, str)
        assert "shared-memory" in reason


class TestUnsupportedReason:
    def test_carries_code_and_message(self):
        reason = UnsupportedReason("no-kernel", "no batch kernel for 'x'")
        assert reason.code == "no-kernel"
        assert reason == "no batch kernel for 'x'"


class TestSweepStatsFallbackField:
    def test_auto_fallback_records_code(self):
        stats = sweep_spec(
            get_spec("protocol-e@sm-cr"), 4, 2, 1, CONFIG, engine="auto"
        )
        assert stats.engine == "scalar"
        assert stats.fallback_reason == "sm-spec"
        assert "shared-memory" in stats.execution

    def test_batch_request_records_code_too(self):
        stats = sweep_spec(
            get_spec("chaudhuri@mp-cr"), 5, 2, 1,
            SweepConfig(runs=4, verify=True), engine="batch",
        )
        assert stats.fallback_reason == "verify-oracles"

    def test_no_fallback_leaves_field_empty(self):
        scalar = sweep_spec(get_spec("chaudhuri@mp-cr"), 5, 2, 1, CONFIG)
        assert scalar.fallback_reason == ""
        batch = sweep_spec(
            get_spec("chaudhuri@mp-cr"), 5, 2, 1, CONFIG, engine="auto"
        )
        assert batch.engine == "batch"
        assert batch.fallback_reason == ""


class TestCliEcho:
    def test_sweep_cli_echoes_fallback_reason(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "protocol-e@sm-cr",
            "--n", "4", "--k", "2", "--t", "1",
            "--runs", "4", "--engine", "auto",
        ]) == 0
        out = capsys.readouterr().out
        assert "fallback reason: sm-spec" in out

    def test_no_echo_without_fallback(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "chaudhuri@mp-cr",
            "--n", "5", "--k", "2", "--t", "1",
            "--runs", "4", "--engine", "auto",
        ]) == 0
        assert "fallback reason" not in capsys.readouterr().out
