"""Tests for execution statistics and outcome serialization."""

from repro.core.problem import Outcome
from repro.core.validity import RV1, RV2
from repro.core.values import DEFAULT, EMPTY
from repro.harness.runner import run_mp, run_sm
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_e import protocol_e


class TestExecutionStats:
    def test_mp_counters(self):
        n = 4
        report = run_mp(
            [ChaudhuriKSet() for _ in range(n)],
            list("dcba"), k=2, t=1, validity=RV1,
        )
        stats = report.result.stats()
        assert stats.total_sends == n * n
        assert sum(stats.sends_by_process.values()) == n * n
        assert all(count == n for count in stats.sends_by_process.values())
        assert stats.total_register_ops == 0
        assert stats.last_decision_tick is not None
        assert stats.last_decision_tick <= stats.ticks

    def test_sm_counters(self):
        n = 3
        report = run_sm(
            [protocol_e] * n, ["v"] * n, k=2, t=n, validity=RV2,
        )
        stats = report.result.stats()
        assert stats.total_sends == 0
        # each process: 1 write + n reads
        assert stats.total_register_ops == n * (n + 1)
        assert len(stats.decision_tick_by_process) == n

    def test_decision_latency_ordering(self):
        report = run_mp(
            [ChaudhuriKSet() for _ in range(4)],
            list("dcba"), k=2, t=1, validity=RV1,
        )
        stats = report.result.stats()
        for pid, tick in stats.decision_tick_by_process.items():
            assert 0 <= tick <= stats.ticks

    def test_summary_text(self):
        report = run_mp(
            [ChaudhuriKSet() for _ in range(3)],
            list("abc"), k=2, t=1, validity=RV1,
        )
        text = report.result.stats().summary()
        assert "sends=9" in text and "ticks=" in text


class TestOutcomeSerialization:
    def outcome(self):
        return Outcome(
            n=4,
            inputs={0: "a", 1: 7, 2: "c", 3: "d"},
            decisions={0: "a", 1: DEFAULT, 3: 7},
            faulty=frozenset({2}),
        )

    def test_round_trip_primitives_and_sentinels(self):
        restored = Outcome.from_json(self.outcome().to_json())
        assert restored.n == 4
        assert restored.inputs == {0: "a", 1: 7, 2: "c", 3: "d"}
        assert restored.decisions[1] is DEFAULT
        assert restored.decisions[3] == 7
        assert restored.faulty == {2}

    def test_empty_sentinel_round_trips(self):
        outcome = Outcome(
            n=1, inputs={0: "x"}, decisions={0: EMPTY}, faulty=frozenset()
        )
        restored = Outcome.from_json(outcome.to_json())
        assert restored.decisions[0] is EMPTY

    def test_non_primitive_values_become_reprs(self):
        outcome = Outcome(
            n=1, inputs={0: ("tuple", 1)}, decisions={}, faulty=frozenset()
        )
        restored = Outcome.from_json(outcome.to_json())
        assert restored.inputs[0] == repr(("tuple", 1))

    def test_verdicts_survive_round_trip(self):
        from repro.core.problem import SCProblem

        original = self.outcome()
        restored = Outcome.from_json(original.to_json())
        problem = SCProblem(n=4, k=3, t=1, validity=RV1)
        assert (
            [str(v) for v in problem.check(original).values()]
            == [str(v) for v in problem.check(restored).values()]
        )
