"""Tests for trace records and queries."""

from repro.runtime.traces import Trace, TraceRecord


class TestTrace:
    def make(self):
        trace = Trace()
        trace.record(0, "start", 0)
        trace.record(1, "send", 0, 1, "m1")
        trace.record(2, "send", 0, 2, "m1")
        trace.record(3, "deliver", 1, 0, "m1")
        trace.record(4, "decide", 1, payload="v")
        trace.record(5, "crash", 2)
        return trace

    def test_length_and_iteration(self):
        trace = self.make()
        assert len(trace) == 6
        assert [r.kind for r in trace] == [
            "start", "send", "send", "deliver", "decide", "crash"
        ]

    def test_of_kind(self):
        trace = self.make()
        assert len(trace.of_kind("send")) == 2
        assert trace.of_kind("decide")[0].payload == "v"

    def test_by_process(self):
        trace = self.make()
        assert [r.kind for r in trace.by_process(0)] == ["start", "send", "send"]

    def test_counters(self):
        trace = self.make()
        assert trace.message_count() == 2
        assert trace.delivery_count() == 1
        assert len(trace.decisions()) == 1

    def test_indexing(self):
        trace = self.make()
        assert trace[0].kind == "start"
        assert trace[-1].kind == "crash"

    def test_format_full(self):
        text = self.make().format()
        assert "decide" in text and "p1" in text

    def test_format_limit(self):
        text = self.make().format(limit=2)
        assert "more records" in text
        assert text.count("\n") == 2

    def test_record_str(self):
        record = TraceRecord(7, "deliver", 3, 1, ("VAL", "x"))
        text = str(record)
        assert "p3" in text and "peer=p1" in text and "VAL" in text
