"""Tests for trace records and queries."""

from repro.runtime.traces import Trace, TraceRecord


class TestTrace:
    def make(self):
        trace = Trace()
        trace.record(0, "start", 0)
        trace.record(1, "send", 0, 1, "m1")
        trace.record(2, "send", 0, 2, "m1")
        trace.record(3, "deliver", 1, 0, "m1")
        trace.record(4, "decide", 1, payload="v")
        trace.record(5, "crash", 2)
        return trace

    def test_length_and_iteration(self):
        trace = self.make()
        assert len(trace) == 6
        assert [r.kind for r in trace] == [
            "start", "send", "send", "deliver", "decide", "crash"
        ]

    def test_of_kind(self):
        trace = self.make()
        assert len(trace.of_kind("send")) == 2
        assert trace.of_kind("decide")[0].payload == "v"

    def test_by_process(self):
        trace = self.make()
        assert [r.kind for r in trace.by_process(0)] == ["start", "send", "send"]

    def test_counters(self):
        trace = self.make()
        assert trace.message_count() == 2
        assert trace.delivery_count() == 1
        assert len(trace.decisions()) == 1

    def test_indexing(self):
        trace = self.make()
        assert trace[0].kind == "start"
        assert trace[-1].kind == "crash"

    def test_format_full(self):
        text = self.make().format()
        assert "decide" in text and "p1" in text

    def test_format_limit(self):
        text = self.make().format(limit=2)
        assert "more records" in text
        assert text.count("\n") == 2

    def test_record_str(self):
        record = TraceRecord(7, "deliver", 3, 1, ("VAL", "x"))
        text = str(record)
        assert "p3" in text and "peer=p1" in text and "VAL" in text


class TestTraceVersion:
    """The monotonic version counter is the dirty flag for caches
    derived from the trace (regression: ``ExecutionResult.stats()`` used
    to cache forever even when a COUNTERS trace was extended)."""

    def test_version_counts_every_counted_append(self):
        from repro.runtime.traces import TraceMode

        trace = Trace(TraceMode.COUNTERS)
        assert trace.version == 0
        trace.record(0, "send", 0, 1, "m")
        trace.record(1, "deliver", 1, 0, "m")
        assert trace.version == 2

    def test_version_static_in_off_mode(self):
        from repro.runtime.traces import TraceMode

        trace = Trace(TraceMode.OFF)
        trace.record(0, "send", 0, 1, "m")
        assert trace.version == 0

    def test_stats_cache_invalidated_when_counters_trace_extended(self):
        from repro.core.problem import Outcome
        from repro.runtime.kernel import ExecutionResult
        from repro.runtime.traces import TraceMode

        trace = Trace(TraceMode.COUNTERS)
        trace.record(0, "send", 0, 1, "m")
        outcome = Outcome(
            n=2, inputs={0: "v", 1: "v"}, decisions={}, faulty=frozenset()
        )
        result = ExecutionResult(
            outcome=outcome, trace=trace, ticks=1, quiescent=False
        )
        first = result.stats()
        assert first.sends_by_process.get(0) == 1
        # Extend the trace after the first stats() call -- the regression
        # was a stale cache here.
        trace.record(1, "send", 0, 1, "m2")
        trace.record(2, "deliver", 1, 0, "m2")
        second = result.stats()
        assert second.sends_by_process.get(0) == 2
        assert second.deliveries_by_process.get(1) == 1
        # Unchanged trace -> the cached object is reused.
        assert result.stats() is second

    def test_stats_cache_invalidated_in_full_mode_too(self):
        from repro.core.problem import Outcome
        from repro.runtime.kernel import ExecutionResult
        from repro.runtime.traces import TraceMode

        trace = Trace(TraceMode.FULL)
        outcome = Outcome(
            n=1, inputs={0: "v"}, decisions={}, faulty=frozenset()
        )
        result = ExecutionResult(
            outcome=outcome, trace=trace, ticks=0, quiescent=False
        )
        assert result.stats().sends_by_process.get(0) is None
        trace.record(0, "send", 0, 0, "m")
        assert result.stats().sends_by_process.get(0) == 1
