"""Tests for trace retention modes (FULL / COUNTERS / OFF)."""

import random

import pytest

from repro.harness.inputs import make_inputs
from repro.harness.runner import run_spec
from repro.protocols.base import all_specs
from repro.runtime.traces import Trace, TraceMode


def _small_point(spec):
    """A cheap solvable ``(n, k, t)`` for a registered spec."""
    for n in (5, 6, 7):
        for k in range(2, n + 1):
            for t in range(n, 0, -1):
                if spec.solvable(n, k, t):
                    return n, k, t
    raise AssertionError(f"no small solvable point for {spec.name}")


def _run(spec, mode):
    n, k, t = _small_point(spec)
    inputs = make_inputs("distinct", n, random.Random(7))
    return run_spec(spec, n, k, t, inputs, trace_mode=mode)


class TestCountersMode:
    @pytest.mark.parametrize(
        "spec", all_specs(), ids=lambda spec: spec.name
    )
    def test_stats_match_full_mode(self, spec):
        full = _run(spec, TraceMode.FULL)
        counters = _run(spec, TraceMode.COUNTERS)
        assert counters.result.stats() == full.result.stats()
        assert counters.verdicts == full.verdicts
        assert counters.result.outcome.decisions == full.result.outcome.decisions

    def test_no_records_allocated(self):
        trace = Trace(TraceMode.COUNTERS)
        trace.record(0, "start", 0)
        trace.record(1, "send", 0, 1, "m")
        trace.record(2, "deliver", 1, 0, "m")
        trace.record(3, "decide", 1, payload="v")
        assert len(trace) == 0
        assert trace.message_count() == 1
        assert trace.delivery_count() == 1
        assert trace.kind_count("decide") == 1
        assert trace.sends_by_process == {0: 1}
        assert trace.decision_tick_by_process == {1: 3}


class TestOffMode:
    def test_records_nothing(self):
        trace = Trace(TraceMode.OFF)
        trace.record(0, "start", 0)
        trace.record(1, "send", 0, 1, "m")
        assert len(trace) == 0
        assert trace.message_count() == 0
        assert trace.kind_count("send") == 0


class TestFullMode:
    def test_is_the_default(self):
        assert Trace().mode is TraceMode.FULL

    def test_counters_and_records_agree(self):
        trace = Trace()
        trace.record(0, "send", 0, 1, "m")
        trace.record(1, "send", 2, 1, "m")
        assert trace.message_count() == len(trace.of_kind("send")) == 2


class TestStatsCache:
    def test_stats_object_is_cached(self):
        spec = next(iter(all_specs()))
        report = _run(spec, TraceMode.FULL)
        assert report.result.stats() is report.result.stats()
