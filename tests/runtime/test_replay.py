"""Tests for run recording and replay."""

import pytest

from repro.core.validity import RV1, RV2, SV2
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import run_mp, run_sm
from repro.net.schedulers import RandomScheduler
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_e import protocol_e
from repro.protocols.protocol_f import protocol_f
from repro.runtime.replay import (
    Recording,
    RecordingProcessScheduler,
    RecordingScheduler,
    ReplayExhausted,
    ReplayProcessScheduler,
    ReplayScheduler,
)
from repro.shm.schedulers import RandomProcessScheduler


def record_mp_run(seed=3, crash=None):
    scheduler = RecordingScheduler(RandomScheduler(seed))
    report = run_mp(
        [ChaudhuriKSet() for _ in range(5)],
        [f"v{i}" for i in range(5)],
        3, 2, RV1,
        scheduler=scheduler,
        crash_adversary=crash,
    )
    return report, scheduler.recording


class TestMPReplay:
    def test_replay_reproduces_decisions(self):
        report, recording = record_mp_run()
        replayed = run_mp(
            [ChaudhuriKSet() for _ in range(5)],
            [f"v{i}" for i in range(5)],
            3, 2, RV1,
            scheduler=ReplayScheduler(recording),
        )
        assert replayed.outcome.decisions == report.outcome.decisions
        assert replayed.result.ticks == report.result.ticks

    def test_replay_with_crashes(self):
        crash = CrashPlan({0: CrashPoint(after_sends=2)})
        report, recording = record_mp_run(seed=11, crash=crash)
        replayed = run_mp(
            [ChaudhuriKSet() for _ in range(5)],
            [f"v{i}" for i in range(5)],
            3, 2, RV1,
            scheduler=ReplayScheduler(recording),
            crash_adversary=CrashPlan({0: CrashPoint(after_sends=2)}),
        )
        assert replayed.outcome.decisions == report.outcome.decisions
        assert replayed.outcome.faulty == report.outcome.faulty

    def test_json_round_trip(self):
        _, recording = record_mp_run()
        restored = Recording.from_json(recording.to_json())
        assert restored == recording

    def test_divergent_replay_detected(self):
        _, recording = record_mp_run()
        # replay against a different instance size: choices miss
        with pytest.raises(ReplayExhausted):
            run_mp(
                [ChaudhuriKSet() for _ in range(3)],
                ["a", "b", "c"],
                2, 1, RV1,
                scheduler=ReplayScheduler(recording),
            )

    def test_wrong_kind_rejected(self):
        _, recording = record_mp_run()
        with pytest.raises(ValueError):
            ReplayProcessScheduler(recording)

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError):
            Recording.from_json('{"foo": 1}')


class TestSMReplay:
    def record_sm_run(self, seed=5):
        scheduler = RecordingProcessScheduler(RandomProcessScheduler(seed))
        report = run_sm(
            [protocol_f] * 6,
            ["v"] * 6,
            5, 3, SV2,
            scheduler=scheduler,
        )
        return report, scheduler.recording

    def test_replay_reproduces_decisions(self):
        report, recording = self.record_sm_run()
        replayed = run_sm(
            [protocol_f] * 6,
            ["v"] * 6,
            5, 3, SV2,
            scheduler=ReplayProcessScheduler(recording),
        )
        assert replayed.outcome.decisions == report.outcome.decisions
        assert replayed.result.ticks == report.result.ticks

    def test_replay_different_program_diverges_or_finishes(self):
        _, recording = self.record_sm_run()
        # protocol_e takes fewer steps; the recording outlives the run,
        # which is fine (extra choices unused) -- but a *shorter*
        # recording on a longer run must raise.
        short = Recording(kind="sm", choices=recording.choices[:3])
        with pytest.raises(ReplayExhausted):
            run_sm(
                [protocol_f] * 6,
                ["v"] * 6,
                5, 3, SV2,
                scheduler=ReplayProcessScheduler(short),
            )

    def test_kind_mismatch(self):
        _, recording = self.record_sm_run()
        with pytest.raises(ValueError):
            ReplayScheduler(recording)
