"""Tests for the asyncio message-passing backend."""

import pytest

from repro.core.validity import RV1, RV2
from repro.core.problem import SCProblem
from repro.failures.crash import CrashPlan, CrashPoint
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_a import ProtocolA
from repro.runtime.asyncio_runtime import run_async


class TestAsyncBackend:
    def test_chaudhuri_decides_and_satisfies_conditions(self):
        n, k, t = 6, 3, 2
        result = run_async(
            [ChaudhuriKSet() for _ in range(n)],
            [f"v{i}" for i in range(n)],
            t=t,
            seed=11,
            timeout=10,
        )
        problem = SCProblem(n=n, k=k, t=t, validity=RV1)
        assert problem.satisfied_by(result.outcome)

    def test_protocol_a_unanimous(self):
        n = 5
        result = run_async(
            [ProtocolA() for _ in range(n)],
            ["v"] * n,
            t=1,
            seed=3,
            timeout=10,
        )
        problem = SCProblem(n=n, k=2, t=1, validity=RV2)
        assert problem.satisfied_by(result.outcome)
        assert set(result.outcome.decisions.values()) == {"v"}

    def test_crash_budget_respected(self):
        n = 6
        result = run_async(
            [ProtocolA() for _ in range(n)],
            ["v"] * n,
            t=2,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_sends=2),
            }),
            seed=5,
            timeout=10,
        )
        assert result.outcome.faulty <= {0, 1}
        for pid in range(2, n):
            assert result.outcome.decisions[pid] == "v"

    def test_jitter_seeds_vary_traces(self):
        def run(seed):
            return run_async(
                [ChaudhuriKSet() for _ in range(5)],
                [f"v{i}" for i in range(5)],
                t=2,
                seed=seed,
                timeout=10,
            )

        ticks = {run(seed).ticks for seed in range(3)}
        assert ticks  # completed; tick counts recorded

    def test_timeout_guards_nontermination(self):
        from repro.runtime.process import Process

        class Silent(Process):
            pass  # never decides

        result = run_async([Silent()], ["v"], t=0, timeout=0.2)
        assert 0 not in result.outcome.decisions

    def test_agreement_across_backends(self):
        """The async backend's outcomes satisfy the same SC conditions as
        the deterministic kernel's."""
        from repro.harness.runner import run_mp

        n, k, t = 6, 3, 2
        inputs = [f"v{i}" for i in range(n)]
        deterministic = run_mp(
            [ChaudhuriKSet() for _ in range(n)], inputs, k, t, RV1
        )
        assert deterministic.ok
        result = run_async(
            [ChaudhuriKSet() for _ in range(n)], inputs, t=t, seed=1, timeout=10
        )
        problem = SCProblem(n=n, k=k, t=t, validity=RV1)
        assert problem.satisfied_by(result.outcome)
