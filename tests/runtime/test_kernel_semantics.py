"""Fine-grained semantics tests for the message-passing kernel.

These pin behaviours the proofs rely on: self-messages are schedulable
(delayable) like any other, crashed processes stop affecting the world,
Byzantine processes are exempt from the crash adversary, decided
processes keep receiving (they must be able to help), and traces respect
causality.
"""

import pytest

from repro.core.validity import RV2
from repro.failures.crash import CrashPlan, CrashPoint
from repro.net.schedulers import FifoScheduler, PredicateScheduler
from repro.runtime.events import Delivery
from repro.runtime.kernel import MPKernel
from repro.runtime.process import Process


class SelfCounter(Process):
    """Decides once its own broadcast comes back."""

    def __init__(self):
        self.got_self = False
        self.others = 0

    def on_start(self, ctx):
        ctx.broadcast(("VAL", ctx.input))

    def on_message(self, ctx, sender, payload):
        if sender == ctx.pid:
            self.got_self = True
        else:
            self.others += 1
        if self.got_self and not ctx.decided:
            ctx.decide(ctx.input)


class TestSelfDelivery:
    def test_self_message_is_delivered(self):
        kernel = MPKernel(
            [SelfCounter() for _ in range(3)],
            ["v"] * 3, t=0, scheduler=FifoScheduler(),
        )
        kernel.run()
        assert kernel.all_correct_decided()

    def test_self_message_can_be_delayed(self):
        # delay p0's self-message until it heard everyone else
        processes = [SelfCounter() for _ in range(3)]

        def allow(kernel, delivery: Delivery) -> bool:
            if delivery.receiver == 0 and delivery.sender == 0:
                return processes[0].others >= 2
            return True

        kernel = MPKernel(
            processes, ["v"] * 3, t=0,
            scheduler=PredicateScheduler(allow),
        )
        kernel.run()
        assert processes[0].others >= 2  # heard both peers before itself


class TestCrashSemantics:
    def test_crashed_process_never_handles_again(self):
        handled = []

        class Recorder(Process):
            def on_start(self, ctx):
                ctx.broadcast(("VAL", ctx.input))

            def on_message(self, ctx, sender, payload):
                handled.append((ctx.pid, sender))
                if not ctx.decided:
                    ctx.decide(ctx.input)

        kernel = MPKernel(
            [Recorder() for _ in range(3)],
            ["v"] * 3, t=1,
            scheduler=FifoScheduler(),
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
            stop_when_decided=False,
        )
        kernel.run()
        assert all(pid != 0 for pid, _ in handled)

    def test_byzantine_exempt_from_crash_adversary(self):
        # the crash adversary may not touch declared-Byzantine processes
        class Chatty(Process):
            def on_start(self, ctx):
                ctx.broadcast(("NOISE", 0))

        kernel = MPKernel(
            [Chatty(), SelfCounter(), SelfCounter()],
            ["v"] * 3, t=1,
            scheduler=FifoScheduler(),
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)}),
            byzantine=[0],
            enforce_budget=False,
            stop_when_decided=False,
        )
        result = kernel.run()
        # p0 was NOT crashed (Byzantine wins); its noise was sent
        assert 0 not in kernel.crashed
        assert any(
            r.pid == 0 for r in result.trace.of_kind("send")
        )

    def test_crash_after_decide_keeps_decision_recorded(self):
        from repro.failures.crash import CrashAfterDecide

        kernel = MPKernel(
            [SelfCounter() for _ in range(3)],
            ["v"] * 3, t=1,
            scheduler=FifoScheduler(),
            crash_adversary=CrashAfterDecide([0]),
            stop_when_decided=False,
        )
        result = kernel.run()
        assert 0 in result.outcome.faulty
        assert result.outcome.decisions.get(0) == "v"
        # the decision is excluded from *correct* decision values
        assert 0 not in result.outcome.correct_decisions()


class TestDecidedProcessesKeepServing:
    def test_messages_still_delivered_after_decide(self):
        received_after_decide = []

        class Helper(Process):
            def on_start(self, ctx):
                ctx.broadcast(("VAL", ctx.input))
                ctx.decide(ctx.input)

            def on_message(self, ctx, sender, payload):
                received_after_decide.append((ctx.pid, sender))

        kernel = MPKernel(
            [Helper() for _ in range(2)],
            ["v"] * 2, t=0,
            scheduler=FifoScheduler(),
            stop_when_decided=False,
        )
        kernel.run()
        assert received_after_decide  # deliveries continue post-decision


class TestTraceCausality:
    def test_every_delivery_preceded_by_its_send(self):
        kernel = MPKernel(
            [SelfCounter() for _ in range(4)],
            ["v"] * 4, t=0,
            scheduler=FifoScheduler(),
            stop_when_decided=False,
        )
        result = kernel.run()
        send_times = {}
        for record in result.trace:
            if record.kind == "send":
                send_times.setdefault(
                    (record.pid, record.peer, repr(record.payload)), []
                ).append(record.tick)
        for record in result.trace:
            if record.kind == "deliver":
                key = (record.peer, record.pid, repr(record.payload))
                assert key in send_times
                assert min(send_times[key]) <= record.tick

    def test_start_precedes_all_process_activity(self):
        kernel = MPKernel(
            [SelfCounter() for _ in range(3)],
            ["v"] * 3, t=0,
            scheduler=FifoScheduler(),
            stop_when_decided=False,
        )
        result = kernel.run()
        first_activity = {}
        starts = {}
        for index, record in enumerate(result.trace):
            if record.kind == "start":
                starts[record.pid] = index
            elif record.kind in ("send", "decide"):
                first_activity.setdefault(record.pid, index)
        for pid, first in first_activity.items():
            assert starts[pid] <= first
