"""Tests for the Context/Process abstraction."""

import pytest

from repro.runtime.events import Delivery, Start, fresh_event_id
from repro.runtime.process import Context, Process, ProtocolError


class StubContext(Context):
    def __init__(self, pid=0, n=3, t=1, input_value="x"):
        super().__init__(pid, n, t, input_value)
        self.sent = []
        self.decides = []

    def _emit_send(self, dst, payload):
        self.sent.append((dst, payload))

    def _emit_decide(self, value):
        self.decides.append(value)


class TestContext:
    def test_exposes_instance_parameters(self):
        ctx = StubContext(pid=2, n=5, t=1, input_value="v")
        assert ctx.pid == 2
        assert ctx.n == 5
        assert ctx.t == 1
        assert ctx.input == "v"

    def test_send_routes_through_emit(self):
        ctx = StubContext()
        ctx.send(1, "hello")
        assert ctx.sent == [(1, "hello")]

    def test_send_validates_destination(self):
        ctx = StubContext(n=3)
        with pytest.raises(ProtocolError):
            ctx.send(3, "m")
        with pytest.raises(ProtocolError):
            ctx.send(-1, "m")

    def test_broadcast_includes_self(self):
        ctx = StubContext(pid=1, n=3)
        ctx.broadcast("m")
        assert [dst for dst, _ in ctx.sent] == [0, 1, 2]

    def test_decide_is_irrevocable(self):
        ctx = StubContext()
        ctx.decide("v")
        assert ctx.decided
        assert ctx.decision == "v"
        with pytest.raises(ProtocolError):
            ctx.decide("w")
        assert ctx.decision == "v"

    def test_decide_emits_once(self):
        ctx = StubContext()
        ctx.decide("v")
        assert ctx.decides == ["v"]

    def test_undecided_initially(self):
        ctx = StubContext()
        assert not ctx.decided
        assert ctx.decision is None


class TestProcessBase:
    def test_default_handlers_are_noops(self):
        process = Process()
        ctx = StubContext()
        process.on_start(ctx)
        process.on_message(ctx, 1, "m")
        assert not ctx.sent and not ctx.decided

    def test_repr(self):
        class MyProto(Process):
            pass

        assert repr(MyProto()) == "MyProto()"


class TestEvents:
    def test_start_str(self):
        assert "p3" in str(Start(seq=0, pid=3))

    def test_delivery_str(self):
        text = str(Delivery(seq=1, sender=0, receiver=2, payload=("VAL", "x")))
        assert "p0" in text and "p2" in text and "VAL" in text

    def test_fresh_event_ids_increase(self):
        a, b = fresh_event_id(), fresh_event_id()
        assert b > a

    def test_events_are_frozen(self):
        event = Start(seq=0, pid=1)
        with pytest.raises(Exception):
            event.pid = 2
