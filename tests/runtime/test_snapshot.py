"""Snapshot/restore round-trips for both kernels, across the registry.

The exhaustive explorer's fast-fork path is sound only if ``restore()``
reproduces exactly the state a ``copy.deepcopy`` fork would have: the
same structural fingerprint at the restore point, and the same
behaviour on every subsequent step.  These tests pin that equivalence
for every protocol in the registry, not just the ones the explorer
happens to exercise.
"""

import copy

import pytest

from repro.harness.exhaustive import (
    _fingerprint_mp,
    _fingerprint_sm,
    _SigCache,
)
from repro.protocols.base import all_specs, get_spec
from repro.runtime.events import Delivery, Event, Start
from repro.runtime.kernel import MPKernel
from repro.runtime.traces import TraceMode
from repro.shm.kernel import SMKernel

MP_SPECS = sorted(s.name for s in all_specs() if not s.is_shared_memory)
SM_SPECS = sorted(s.name for s in all_specs() if s.is_shared_memory)


def _instance(spec):
    """A small (n, k, t) point the spec's factory accepts."""
    for n in range(3, 8):
        for t in range(n):
            for k in range(1, n + 1):
                if not spec.solvable(n, k, t):
                    continue
                try:
                    spec.make(n, k, t)
                except ValueError:
                    continue
                return n, k, t
    raise RuntimeError(f"no small instance for {spec.name}")


def _inputs(n):
    return ["a", "b"] * (n // 2) + ["a"] * (n % 2)


def _mp_fp(kernel):
    return _fingerprint_mp(kernel, include_counters=True, sigs=_SigCache())


def _mp_kernel(spec_name):
    spec = get_spec(spec_name)
    n, k, t = _instance(spec)
    return MPKernel(
        [spec.make(n, k, t) for _ in range(n)],
        _inputs(n),
        t=t,
        scheduler=None,
        stop_when_decided=True,
        trace_mode=TraceMode.OFF,
    )


def _sm_kernel(spec_name):
    spec = get_spec(spec_name)
    n, k, t = _instance(spec)
    return SMKernel(
        [spec.make(n, k, t)] * n,
        _inputs(n),
        t=t,
        scheduler=None,
        stop_when_decided=True,
        trace_mode=TraceMode.OFF,
    )


class TestMPSnapshotRoundTrip:
    @pytest.mark.parametrize("spec_name", MP_SPECS)
    def test_restore_equals_deepcopy_fork(self, spec_name):
        kernel = _mp_kernel(spec_name)
        # walk a deterministic prefix into the run
        for _ in range(4):
            if not kernel._pending:
                break
            kernel.step(min(kernel._pending))

        snap = kernel.snapshot()
        fork = copy.deepcopy(kernel)

        # diverge the live kernel, then rewind
        for _ in range(5):
            if not kernel._pending:
                break
            kernel.step(max(kernel._pending))
        kernel.restore(snap)

        assert _mp_fp(kernel) == _mp_fp(fork)

        # the restored kernel and the deepcopy fork must now agree
        # step-for-step on any common schedule
        for _ in range(60):
            if not kernel._pending or kernel.all_correct_decided():
                break
            seq = min(kernel._pending)
            kernel.step(seq)
            fork.step(seq)
            assert _mp_fp(kernel) == _mp_fp(fork)

    @pytest.mark.parametrize("spec_name", MP_SPECS)
    def test_snapshot_survives_live_mutation(self, spec_name):
        """A snapshot is a value, not a view of the live kernel."""
        kernel = _mp_kernel(spec_name)
        kernel.step(min(kernel._pending))
        snap = kernel.snapshot()
        before = _mp_fp(kernel)
        for _ in range(6):
            if not kernel._pending:
                break
            kernel.step(min(kernel._pending))
        kernel.restore(snap)
        assert _mp_fp(kernel) == before
        kernel.restore(snap)  # restoring twice is idempotent
        assert _mp_fp(kernel) == before


class TestSMSnapshotRoundTrip:
    """Generator frames cannot be deepcopied -- that impossibility is
    why SM snapshots are replay-based.  The fork reference here is a
    *fresh kernel replaying the same choice prefix*, which is exactly
    what a deepcopy fork would have produced if one existed."""

    @pytest.mark.parametrize("spec_name", SM_SPECS)
    def test_replay_restore_equals_fresh_replay(self, spec_name):
        kernel = _sm_kernel(spec_name)
        kernel._apply_dynamic_crashes()
        for _ in range(4):
            runnable = kernel.runnable_pids()
            if not runnable:
                break
            kernel.step_pid(min(runnable))

        snap = kernel.snapshot()
        fork = _sm_kernel(spec_name)
        fork.restore(snap)  # fresh kernel, same prefix

        for _ in range(5):
            runnable = kernel.runnable_pids()
            if not runnable:
                break
            kernel.step_pid(max(runnable))
        kernel.restore(snap)

        assert _fingerprint_sm(kernel) == _fingerprint_sm(fork)

        # bounded lockstep: a fixed schedule may starve a looping
        # program, so this compares a window, not a complete run
        for _ in range(40):
            if not kernel.runnable_pids() or kernel.all_correct_decided():
                break
            pid = min(kernel.runnable_pids())
            kernel.step_pid(pid)
            fork.step_pid(pid)
            assert _fingerprint_sm(kernel) == _fingerprint_sm(fork)

    def test_snapshot_is_choice_prefix(self):
        """SM snapshots record the schedule, not copied generator frames."""
        kernel = _sm_kernel("trivial@sm-cr")
        kernel._apply_dynamic_crashes()
        kernel.step_pid(0)
        kernel.step_pid(1)
        snap = kernel.snapshot()
        assert snap.choices == (0, 1)


class TestEventSlots:
    """Satellite guard: events stay ``__slots__``-backed plain data."""

    def test_no_instance_dict(self):
        event = Delivery(seq=0, sender=0, receiver=1, payload=("VAL", "a"))
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            object.__setattr__(event, "not_a_field", 1)

    def test_all_event_classes_are_slotted(self):
        for cls in (Event, Start, Delivery):
            assert "__slots__" in vars(cls), cls.__name__
