"""Tests for the deterministic message-passing kernel."""

import pytest

from repro.failures.crash import CrashPlan, CrashPoint, CrashWhenOthersDecide
from repro.net.network import verify_network_axioms
from repro.net.schedulers import FifoScheduler, LifoScheduler, RandomScheduler
from repro.runtime.kernel import KernelLimitError, MPKernel, SchedulerStall
from repro.runtime.process import Context, Process, ProtocolError


class Broadcaster(Process):
    """Broadcasts input, decides after hearing n - t values."""

    def __init__(self):
        self.seen = {}

    def on_start(self, ctx):
        ctx.broadcast(("VAL", ctx.input))

    def on_message(self, ctx, sender, payload):
        self.seen[sender] = payload[1]
        if len(self.seen) >= ctx.n - ctx.t and not ctx.decided:
            ctx.decide(sorted(self.seen.values())[0])


class PingPong(Process):
    """Replies to every message once, to exercise chains of sends."""

    def on_start(self, ctx):
        if ctx.pid == 0:
            ctx.send(1, ("PING", 0))

    def on_message(self, ctx, sender, payload):
        tag, hops = payload
        if hops < 5:
            ctx.send((ctx.pid + 1) % ctx.n, (tag, hops + 1))
        elif not ctx.decided:
            ctx.decide(hops)


def run_broadcasters(n, t, scheduler=None, **kwargs):
    kernel = MPKernel(
        [Broadcaster() for _ in range(n)],
        [f"v{i}" for i in range(n)],
        t=t,
        scheduler=scheduler or FifoScheduler(),
        **kwargs,
    )
    return kernel.run()


class TestBasicExecution:
    def test_all_decide(self):
        result = run_broadcasters(4, 1)
        assert set(result.outcome.decisions) == {0, 1, 2, 3}
        assert result.outcome.failure_free

    def test_deterministic_replay(self):
        r1 = run_broadcasters(5, 2, RandomScheduler(seed=42))
        r2 = run_broadcasters(5, 2, RandomScheduler(seed=42))
        assert r1.outcome.decisions == r2.outcome.decisions
        assert r1.ticks == r2.ticks
        assert [str(x) for x in r1.trace] == [str(x) for x in r2.trace]

    def test_different_seeds_can_differ(self):
        decisions = {
            tuple(sorted(run_broadcasters(5, 2, RandomScheduler(seed=s))
                         .outcome.decisions.items()))
            for s in range(12)
        }
        assert len(decisions) >= 2  # schedule actually matters

    def test_message_count(self):
        result = run_broadcasters(4, 1)
        assert result.message_count == 16  # broadcast = n sends, n processes

    def test_stop_when_decided_leaves_events_pending(self):
        result = run_broadcasters(4, 1)
        assert not result.quiescent  # undelivered value messages remain

    def test_run_to_quiescence(self):
        kernel = MPKernel(
            [Broadcaster() for _ in range(4)],
            ["v"] * 4,
            t=1,
            scheduler=FifoScheduler(),
            stop_when_decided=False,
        )
        result = kernel.run()
        assert result.quiescent

    def test_chain_of_sends(self):
        kernel = MPKernel(
            [PingPong() for _ in range(3)],
            [0] * 3,
            t=0,
            scheduler=FifoScheduler(),
            stop_when_decided=False,
        )
        result = kernel.run()
        assert result.trace.decisions()[0].payload == 5

    def test_network_axioms_hold(self):
        result = run_broadcasters(5, 2, RandomScheduler(7))
        report = verify_network_axioms(result.trace)
        assert report.reliable

    def test_quiescent_run_loses_no_messages(self):
        kernel = MPKernel(
            [Broadcaster() for _ in range(4)],
            ["v"] * 4,
            t=1,
            scheduler=LifoScheduler(),
            stop_when_decided=False,
        )
        result = kernel.run()
        report = verify_network_axioms(result.trace)
        assert report.reliable
        assert not report.lost


class TestCrashInjection:
    def test_crash_before_start(self):
        result = run_broadcasters(
            4, 1, crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)})
        )
        assert 0 in result.outcome.faulty
        assert 0 not in result.outcome.decisions
        # p0 never broadcast: no VAL message from 0 delivered
        assert all(r.peer != 0 for r in result.trace.of_kind("deliver"))

    def test_partial_broadcast(self):
        result = run_broadcasters(
            4, 1, crash_adversary=CrashPlan({0: CrashPoint(after_sends=2)})
        )
        assert 0 in result.outcome.faulty
        sends_from_0 = [r for r in result.trace.of_kind("send") if r.pid == 0]
        assert len(sends_from_0) == 2
        suppressed = [
            r for r in result.trace.of_kind("send-suppressed") if r.pid == 0
        ]
        assert len(suppressed) == 2

    def test_correct_still_terminate_under_t_crashes(self):
        result = run_broadcasters(
            5, 2,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_sends=1),
            }),
        )
        for pid in (2, 3, 4):
            assert pid in result.outcome.decisions

    def test_budget_enforced(self):
        with pytest.raises(ValueError):
            run_broadcasters(
                4, 1,
                crash_adversary=CrashPlan({
                    0: CrashPoint(after_steps=0),
                    1: CrashPoint(after_steps=0),
                }),
            )

    def test_budget_can_be_disabled(self):
        result = run_broadcasters(
            4, 1,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_steps=0),
            }),
            enforce_budget=False,
        )
        assert result.outcome.failure_count == 2

    def test_dynamic_crash_when_others_decide(self):
        adversary = CrashWhenOthersDecide(victims=[3], watch=[0])
        result = run_broadcasters(4, 1, crash_adversary=adversary)
        assert 3 in result.outcome.faulty

    def test_messages_to_crashed_are_dropped(self):
        result = run_broadcasters(
            4, 1,
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
            stop_when_decided=False,
        )
        drops = [r for r in result.trace.of_kind("drop") if r.pid == 0]
        assert drops  # p0 crashed after broadcasting, incoming dropped


class TestKernelSafety:
    def test_double_decide_raises(self):
        class DoubleDecider(Process):
            def on_start(self, ctx):
                ctx.decide(1)
                ctx.decide(2)

        kernel = MPKernel(
            [DoubleDecider()], [0], t=0, scheduler=FifoScheduler()
        )
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_send_to_unknown_process_raises(self):
        class BadSender(Process):
            def on_start(self, ctx):
                ctx.send(99, "hello")

        kernel = MPKernel([BadSender()], [0], t=0, scheduler=FifoScheduler())
        with pytest.raises(ProtocolError):
            kernel.run()

    def test_tick_limit(self):
        class Flooder(Process):
            def on_start(self, ctx):
                ctx.send(ctx.pid, "again")

            def on_message(self, ctx, sender, payload):
                ctx.send(ctx.pid, "again")

        kernel = MPKernel(
            [Flooder()], [0], t=0, scheduler=FifoScheduler(), max_ticks=100
        )
        with pytest.raises(KernelLimitError):
            kernel.run()

    def test_scheduler_stall_detected(self):
        class Refuser:
            def pick(self, kernel):
                return None

        kernel = MPKernel(
            [Broadcaster() for _ in range(3)],
            ["v"] * 3,
            t=0,
            scheduler=Refuser(),
        )
        with pytest.raises(SchedulerStall):
            kernel.run()

    def test_byzantine_ids_validated(self):
        with pytest.raises(ValueError):
            MPKernel(
                [Broadcaster()], ["v"], t=1,
                scheduler=FifoScheduler(), byzantine=[5],
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MPKernel(
                [Broadcaster()], ["v", "w"], t=0, scheduler=FifoScheduler()
            )
