"""Tests for the package's public API surface."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        verdict = repro.classify(repro.Model.MP_CR, repro.RV1, 64, 5, 4)
        assert verdict.status is repro.Solvability.POSSIBLE

        spec = repro.get_spec("chaudhuri@mp-cr")
        report = repro.run_spec(spec, 7, 3, 2, list("abcdefg"))
        assert report.ok

    def test_region_map_via_top_level(self):
        region = repro.region_map(repro.Model.SM_CR, repro.RV2, 8)
        assert region.count(repro.Solvability.POSSIBLE) == len(region.grid)

    def test_sweep_via_top_level(self):
        spec = repro.get_spec("protocol-e@sm-cr")
        stats = repro.sweep_spec(spec, 5, 2, 5, repro.SweepConfig(runs=5, seed=0))
        assert stats.clean

    def test_validity_conditions_exported(self):
        codes = {c.code for c in repro.ALL_VALIDITY_CONDITIONS}
        assert codes == {"SV1", "SV2", "RV1", "RV2", "WV1", "WV2"}
