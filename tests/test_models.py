"""Tests for the model enumeration and its strength relations."""

import pytest

from repro.models import ALL_MODELS, Communication, FailureMode, Model


class TestModel:
    def test_four_models(self):
        assert len(ALL_MODELS) == 4
        assert len(set(ALL_MODELS)) == 4

    def test_shorthands(self):
        assert str(Model.MP_CR) == "MP/CR"
        assert str(Model.MP_BYZ) == "MP/Byz"
        assert str(Model.SM_CR) == "SM/CR"
        assert str(Model.SM_BYZ) == "SM/Byz"

    def test_axes(self):
        assert Model.MP_CR.is_message_passing and Model.MP_CR.is_crash
        assert Model.MP_BYZ.is_message_passing and Model.MP_BYZ.is_byzantine
        assert Model.SM_CR.is_shared_memory and Model.SM_CR.is_crash
        assert Model.SM_BYZ.is_shared_memory and Model.SM_BYZ.is_byzantine

    def test_from_shorthand(self):
        for model in ALL_MODELS:
            assert Model.from_shorthand(model.shorthand) is model
        assert Model.from_shorthand("mp/byz") is Model.MP_BYZ

    def test_from_shorthand_unknown(self):
        with pytest.raises(ValueError):
            Model.from_shorthand("XX/YY")

    def test_weaker_or_equal(self):
        # crash adversary weaker than Byzantine, same communication
        assert Model.MP_CR.weaker_or_equal(Model.MP_BYZ)
        assert Model.SM_CR.weaker_or_equal(Model.SM_BYZ)
        assert not Model.MP_BYZ.weaker_or_equal(Model.MP_CR)
        # different communication: incomparable by this relation
        assert not Model.MP_CR.weaker_or_equal(Model.SM_BYZ)

    def test_enums_expose_axis_values(self):
        assert Model.MP_CR.communication is Communication.MESSAGE_PASSING
        assert Model.SM_BYZ.failure_mode is FailureMode.BYZANTINE
        assert str(Communication.SHARED_MEMORY) == "shared-memory"
        assert str(FailureMode.CRASH) == "crash"
