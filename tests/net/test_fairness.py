"""Tests for the fairness wrappers (MP delivery and SM process)."""

from repro.core.validity import SV2
from repro.harness.runner import run_sm
from repro.net.schedulers import FairDeliveryWrapper, LifoScheduler, Scheduler
from repro.runtime.kernel import MPKernel
from repro.runtime.process import Process
from repro.shm.schedulers import (
    FairProcessWrapper,
    RoundRobinScheduler,
    StagedScheduler,
)
from repro.protocols.protocol_f import protocol_f

import pytest


class Needy(Process):
    """Decides only once it has heard from everyone."""

    def __init__(self):
        self.heard = set()

    def on_start(self, ctx):
        ctx.broadcast(("VAL", ctx.input))

    def on_message(self, ctx, sender, payload):
        self.heard.add(sender)
        if len(self.heard) == ctx.n and not ctx.decided:
            ctx.decide(ctx.input)


class _StarveFirst(Scheduler):
    """Never delivers anything to process 0 (unfair on its own)."""

    def pick(self, kernel):
        candidates = [
            seq for seq, event in sorted(kernel.pending.items())
            if getattr(event, "receiver", None) != 0
        ]
        return candidates[0] if candidates else None


class TestFairDeliveryWrapper:
    def test_starved_process_eventually_served(self):
        kernel = MPKernel(
            [Needy() for _ in range(3)],
            ["a", "b", "c"],
            t=0,
            scheduler=FairDeliveryWrapper(_StarveFirst(), patience=5),
        )
        result = kernel.run()
        assert 0 in result.outcome.decisions

    def test_without_wrapper_the_same_schedule_stalls(self):
        from repro.runtime.kernel import SchedulerStall

        kernel = MPKernel(
            [Needy() for _ in range(3)],
            ["a", "b", "c"],
            t=0,
            scheduler=_StarveFirst(),
        )
        with pytest.raises(SchedulerStall):
            kernel.run()

    def test_inner_bias_preserved_between_overrides(self):
        # With a large patience, LIFO order dominates.
        kernel = MPKernel(
            [Needy() for _ in range(3)],
            ["a", "b", "c"],
            t=0,
            scheduler=FairDeliveryWrapper(LifoScheduler(), patience=1000),
        )
        result = kernel.run()
        assert len(result.outcome.decisions) == 3

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            FairDeliveryWrapper(LifoScheduler(), patience=0)


class TestFairProcessWrapper:
    def test_busy_waiting_stage_cannot_starve_others(self):
        """PROTOCOL F's first process spins until n - t registers are
        written; a bare staged scheduler would run it forever."""
        n, k, t = 5, 4, 2
        scheduler = FairProcessWrapper(
            StagedScheduler([[0]], release_on_stall=True), patience=10
        )
        report = run_sm(
            [protocol_f] * n,
            ["v"] * n,
            k, t, SV2,
            scheduler=scheduler,
            max_ticks=50_000,
        )
        assert report.ok

    def test_all_processes_make_progress(self):
        n = 4
        scheduler = FairProcessWrapper(
            StagedScheduler([[1]], release_on_stall=True), patience=4
        )
        report = run_sm(
            [protocol_f] * n,
            ["v"] * n,
            k=n, t=1, validity=SV2,
            scheduler=scheduler,
            max_ticks=50_000,
        )
        assert len(report.outcome.decisions) == n

    def test_round_robin_unchanged_by_wrapper(self):
        n = 3
        plain = run_sm(
            [protocol_f] * n, ["v"] * n, k=n, t=1, validity=SV2,
            scheduler=RoundRobinScheduler(),
        )
        wrapped = run_sm(
            [protocol_f] * n, ["v"] * n, k=n, t=1, validity=SV2,
            scheduler=FairProcessWrapper(RoundRobinScheduler(), patience=10**6),
        )
        assert plain.outcome.decisions == wrapped.outcome.decisions

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            FairProcessWrapper(RoundRobinScheduler(), patience=0)
