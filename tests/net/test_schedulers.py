"""Tests for message delivery schedulers."""

import pytest

from repro.net.schedulers import (
    FifoScheduler,
    GroupPartitionScheduler,
    LifoScheduler,
    PredicateScheduler,
    RandomScheduler,
)
from repro.runtime.kernel import MPKernel, SchedulerStall
from repro.runtime.process import Process


class Collector(Process):
    """Records delivery order; decides after hearing from everyone."""

    def __init__(self):
        self.order = []

    def on_start(self, ctx):
        ctx.broadcast(("VAL", ctx.input))

    def on_message(self, ctx, sender, payload):
        self.order.append(sender)
        if len(self.order) == ctx.n and not ctx.decided:
            ctx.decide(ctx.input)


def build(n, scheduler, processes=None, **kwargs):
    processes = processes or [Collector() for _ in range(n)]
    return MPKernel(
        processes,
        [f"v{i}" for i in range(n)],
        t=0,
        scheduler=scheduler,
        stop_when_decided=False,
        **kwargs,
    ), processes


class TestFifo:
    def test_delivery_in_send_order(self):
        kernel, processes = build(3, FifoScheduler())
        kernel.run()
        # p0 starts first and broadcasts first: every process hears 0 first
        for process in processes:
            assert process.order[0] == 0


class TestLifo:
    def test_starts_drained_before_deliveries(self):
        kernel, processes = build(3, LifoScheduler())
        kernel.run()
        # all processes started (everyone eventually hears everyone)
        for process in processes:
            assert sorted(set(process.order)) == [0, 1, 2]

    def test_newest_first_reverses_order(self):
        kernel, processes = build(3, LifoScheduler())
        kernel.run()
        # the last start is p2's, so its broadcast is newest: heard first
        assert processes[0].order[0] == 2


class TestRandom:
    def test_reproducible(self):
        k1, p1 = build(4, RandomScheduler(9))
        k2, p2 = build(4, RandomScheduler(9))
        k1.run()
        k2.run()
        assert [p.order for p in p1] == [p.order for p in p2]

    def test_seed_changes_order(self):
        orders = set()
        for seed in range(10):
            kernel, processes = build(4, RandomScheduler(seed))
            kernel.run()
            orders.add(tuple(tuple(p.order) for p in processes))
        assert len(orders) > 1


class TestPredicate:
    def test_blocks_until_condition(self):
        # Hold all deliveries to p0 until p1 decided.
        def allow(kernel, delivery):
            if delivery.receiver == 0:
                return kernel.has_decided(1)
            return True

        kernel, processes = build(3, PredicateScheduler(allow))
        kernel.run()
        assert processes[1].order  # p1 heard everything first

    def test_strict_stall_raises(self):
        def never(kernel, delivery):
            return False

        kernel, _ = build(2, PredicateScheduler(never))
        with pytest.raises(SchedulerStall):
            kernel.run()

    def test_release_on_stall_recovers(self):
        def never(kernel, delivery):
            return False

        kernel, processes = build(
            2, PredicateScheduler(never, release_on_stall=True)
        )
        kernel.run()
        for process in processes:
            assert len(process.order) == 2


class TestGroupPartition:
    def test_intra_group_before_cross(self):
        scheduler = GroupPartitionScheduler([[0, 1], [2, 3]])

        class GroupCollector(Collector):
            def on_message(self, ctx, sender, payload):
                self.order.append(sender)
                group = {0, 1} if ctx.pid in (0, 1) else {2, 3}
                if set(self.order) >= group and not ctx.decided:
                    ctx.decide(ctx.input)

        kernel, processes = build(
            4, scheduler, processes=[GroupCollector() for _ in range(4)]
        )
        kernel.run()
        # Before each process decided it saw only its own group.
        assert set(processes[0].order[:2]) <= {0, 1}
        assert set(processes[2].order[:2]) <= {2, 3}

    def test_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            GroupPartitionScheduler([[0, 1], [1, 2]])

    def test_extra_links_flow_freely(self):
        # Without the extra link (2, 0), p0 could never hear p2 before
        # deciding, and this run would stall.
        scheduler = GroupPartitionScheduler(
            [[0], [1, 2]], extra_links=[(2, 0)]
        )

        class WaitForP2(Process):
            def __init__(self):
                self.heard = []

            def on_start(self, ctx):
                ctx.broadcast(("VAL", ctx.input))

            def on_message(self, ctx, sender, payload):
                self.heard.append(sender)
                if ctx.decided:
                    return
                if ctx.pid == 0 and sender == 2:
                    ctx.decide(ctx.input)
                elif ctx.pid != 0:
                    ctx.decide(ctx.input)

        kernel, processes = build(
            3, scheduler, processes=[WaitForP2() for _ in range(3)]
        )
        kernel.run()
        assert 2 in processes[0].heard  # the extra link let p2 -> p0 through

    def test_unlisted_processes_form_singletons(self):
        class SelfDecider(Process):
            def __init__(self):
                self.order = []

            def on_start(self, ctx):
                ctx.broadcast(("VAL", ctx.input))

            def on_message(self, ctx, sender, payload):
                self.order.append(sender)
                if not ctx.decided:
                    ctx.decide(ctx.input)

        scheduler = GroupPartitionScheduler([[0, 1]])
        kernel, processes = build(
            3, scheduler, processes=[SelfDecider() for _ in range(3)]
        )
        kernel.run()
        # p2 is an implicit singleton: it hears only itself until decided.
        assert processes[2].order[0] == 2

    def test_partition_stalls_protocol_needing_cross_traffic(self):
        # Collector needs all n messages but the partition withholds
        # cross-group traffic until decisions that can never come.
        scheduler = GroupPartitionScheduler([[0, 1]])
        kernel, _ = build(3, scheduler)
        with pytest.raises(SchedulerStall):
            kernel.run()
