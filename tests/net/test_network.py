"""Tests for the network axiom checker."""

from repro.net.network import verify_network_axioms
from repro.runtime.traces import Trace


def trace_of(records):
    trace = Trace()
    for record in records:
        trace.record(*record)
    return trace


class TestVerifyNetworkAxioms:
    def test_clean_exchange(self):
        trace = trace_of([
            (0, "send", 0, 1, "m"),
            (1, "deliver", 1, 0, "m"),
        ])
        report = verify_network_axioms(trace)
        assert report.reliable
        assert not report.lost

    def test_forgery_detected(self):
        trace = trace_of([
            (0, "deliver", 1, 0, "m"),  # delivered but never sent
        ])
        report = verify_network_axioms(trace)
        assert not report.reliable
        assert report.forged

    def test_duplication_detected(self):
        trace = trace_of([
            (0, "send", 0, 1, "m"),
            (1, "deliver", 1, 0, "m"),
            (2, "deliver", 1, 0, "m"),
        ])
        report = verify_network_axioms(trace)
        assert report.duplicated

    def test_loss_reported(self):
        trace = trace_of([
            (0, "send", 0, 1, "m"),
        ])
        report = verify_network_axioms(trace)
        assert report.reliable  # loss alone is caller-interpreted
        assert report.lost

    def test_drop_at_crashed_receiver_counts_as_arrival(self):
        trace = trace_of([
            (0, "send", 0, 1, "m"),
            (1, "drop", 1, 0, "m"),
        ])
        report = verify_network_axioms(trace)
        assert report.reliable
        assert not report.lost

    def test_identical_payloads_on_same_channel_matched_by_count(self):
        trace = trace_of([
            (0, "send", 0, 1, "m"),
            (1, "send", 0, 1, "m"),
            (2, "deliver", 1, 0, "m"),
            (3, "deliver", 1, 0, "m"),
        ])
        report = verify_network_axioms(trace)
        assert report.reliable
        assert not report.lost
