"""Smoke tests: the example scripts run end-to-end.

The slower expedition/gallery examples are exercised with reduced
parameters (via their CLI flags) or skipped; the fast ones run as-is.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Solvability queries" in out
        assert "impossibility run" in out

    def test_byzantine_config_rollout(self):
        out = run_example("byzantine_config_rollout.py")
        assert "unanimous honest version won" in out
        assert "bounded shortlist emerged" in out

    def test_shared_memory_shortlist(self):
        out = run_example("shared_memory_shortlist.py")
        assert "lone survivor decided" in out
        assert "unanimity among live workers" in out

    def test_asyncio_backend(self):
        out = run_example("asyncio_backend.py")
        assert "deterministic kernel" in out
        assert "asyncio backend" in out

    def test_region_explorer_panel(self):
        out = run_example(
            "region_explorer.py", "--model", "SM/CR", "--validity", "RV2",
            "--n", "10",
        )
        assert "SM/CR / RV2" in out

    def test_region_explorer_point(self):
        out = run_example(
            "region_explorer.py", "--point", "5", "4", "--n", "16",
        )
        assert "SC(k=5, t=4" in out


class TestHeavierExamples:
    def test_figure_gallery_small(self, tmp_path):
        run_example(
            "figure_gallery.py", "--n", "10", "--outdir", str(tmp_path),
        )
        assert (tmp_path / "fig2_mp-cr.svg").exists()
        assert (tmp_path / "summary.txt").exists()

    def test_verification_lab(self):
        out = run_example("verification_lab.py", timeout=400)
        assert "exhaustive             : True" in out
        assert "space-time diagram" in out
