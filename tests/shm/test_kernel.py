"""Tests for the shared-memory kernel."""

import pytest

from repro.core.values import DEFAULT, EMPTY, is_empty
from repro.failures.crash import CrashPlan, CrashPoint
from repro.runtime.kernel import KernelLimitError, SchedulerStall
from repro.runtime.process import ProtocolError
from repro.shm.kernel import SMKernel
from repro.shm.ops import Decide, Read, Write
from repro.shm.schedulers import RandomProcessScheduler, RoundRobinScheduler


def write_scan_decide(ctx):
    """Minimal protocol: write input, scan all, decide first value seen."""
    yield Write(ctx.input)
    seen = []
    for owner in range(ctx.n):
        value = yield Read(owner)
        if not is_empty(value):
            seen.append(value)
    yield Decide(seen[0])


def run(programs, inputs, t=0, scheduler=None, **kwargs):
    kernel = SMKernel(
        programs,
        inputs,
        t=t,
        scheduler=scheduler or RoundRobinScheduler(),
        **kwargs,
    )
    return kernel, kernel.run()


class TestBasicExecution:
    def test_everyone_decides(self):
        kernel, result = run([write_scan_decide] * 3, ["a", "b", "c"])
        assert len(result.outcome.decisions) == 3

    def test_one_op_per_tick(self):
        kernel, result = run([write_scan_decide] * 2, ["a", "b"])
        # each process: 1 write + 2 reads + 1 decide = 4 ops
        assert result.ticks == 8

    def test_registers_atomic(self):
        kernel, result = run([write_scan_decide] * 4, list("abcd"),
                             scheduler=RandomProcessScheduler(5))
        assert kernel.registers.verify_atomicity()

    def test_deterministic_replay(self):
        k1, r1 = run([write_scan_decide] * 4, list("abcd"),
                     scheduler=RandomProcessScheduler(3))
        k2, r2 = run([write_scan_decide] * 4, list("abcd"),
                     scheduler=RandomProcessScheduler(3))
        assert r1.outcome.decisions == r2.outcome.decisions
        assert [str(x) for x in r1.trace] == [str(x) for x in r2.trace]

    def test_generator_completion_is_halt(self):
        kernel, result = run([write_scan_decide] * 2, ["a", "b"],
                             stop_when_decided=False)
        assert result.quiescent
        assert len(result.trace.of_kind("halt")) == 2

    def test_trace_records_reads_and_writes(self):
        kernel, result = run([write_scan_decide] * 2, ["a", "b"])
        assert len(result.trace.of_kind("write")) == 2
        assert len(result.trace.of_kind("read")) == 4


class TestCrashInjection:
    def test_crash_before_any_op(self):
        kernel, result = run(
            [write_scan_decide] * 3, list("abc"), t=1,
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)}),
        )
        assert 0 in result.outcome.faulty
        assert kernel.registers.current(0) is EMPTY

    def test_crash_mid_scan(self):
        kernel, result = run(
            [write_scan_decide] * 3, list("abc"), t=1,
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=2)}),
        )
        assert 0 in result.outcome.faulty
        assert kernel.registers.current(0) == "a"  # wrote before crashing
        assert 0 not in result.outcome.decisions

    def test_budget_enforced(self):
        with pytest.raises(ValueError):
            run(
                [write_scan_decide] * 3, list("abc"), t=1,
                crash_adversary=CrashPlan({
                    0: CrashPoint(after_steps=0),
                    1: CrashPoint(after_steps=0),
                }),
            )


class TestKernelSafety:
    def test_double_decide_raises(self):
        def double(ctx):
            yield Decide(1)
            yield Decide(2)

        with pytest.raises(ProtocolError):
            run([double], [0], stop_when_decided=False)

    def test_non_op_yield_raises(self):
        def bad(ctx):
            yield "not an op"

        with pytest.raises(ProtocolError):
            run([bad], [0])

    def test_tick_limit(self):
        def spin(ctx):
            while True:
                yield Read(0)

        with pytest.raises(KernelLimitError):
            run([spin], [0], max_ticks=50)

    def test_scheduler_stall(self):
        class Refuser:
            def pick(self, kernel):
                return None

        with pytest.raises(SchedulerStall):
            run([write_scan_decide], ["a"], scheduler=Refuser())

    def test_byzantine_cannot_write_other_registers(self):
        # The Write op targets the issuer's own register by construction;
        # the register file independently enforces single-writer.
        from repro.shm.registers import SingleWriterViolation

        kernel = SMKernel(
            [write_scan_decide], ["a"], t=0, scheduler=RoundRobinScheduler()
        )
        with pytest.raises(SingleWriterViolation):
            kernel.registers.write(1, 0, "intrusion")

    def test_decide_after_generator_keeps_running(self):
        def helper(ctx):
            yield Write(ctx.input)
            yield Decide(ctx.input)
            # keeps serving afterwards (like SIMULATION does)
            for _ in range(3):
                yield Read(0)

        kernel, result = run([helper] * 2, ["a", "b"],
                             stop_when_decided=False)
        assert result.outcome.decisions == {0: "a", 1: "b"}
