"""Fine-grained semantics tests for the shared-memory kernel."""

import pytest

from repro.core.values import EMPTY
from repro.failures.crash import CrashPlan, CrashPoint
from repro.runtime.process import ProtocolError
from repro.shm.kernel import SMKernel
from repro.shm.ops import Decide, Read, Write
from repro.shm.schedulers import RoundRobinScheduler, StagedScheduler


class TestRegisterPersistence:
    def test_crashed_writers_value_remains_readable(self):
        """A register written before a crash stays readable forever --
        the property SIMULATION relies on for 'helping for free'."""
        reads = []

        def writer(ctx):
            yield Write("legacy")
            yield Read(0)  # crash point is after this op

        def reader(ctx):
            value = yield Read(0)
            reads.append(value)
            yield Decide(value)

        kernel = SMKernel(
            [writer, reader],
            ["a", "b"],
            t=1,
            scheduler=StagedScheduler([[0], [1]], release_on_stall=True),
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=2)}),
            stop_when_decided=False,
        )
        kernel.run()
        assert reads == ["legacy"]

    def test_unwritten_register_reads_empty(self):
        seen = []

        def peek(ctx):
            value = yield Read(1)
            seen.append(value)
            yield Decide("done")

        def silent(ctx):
            return
            yield

        kernel = SMKernel(
            [peek, silent], ["a", "b"], t=1,
            scheduler=StagedScheduler([[0]], release_on_stall=True),
        )
        kernel.run()
        assert seen == [EMPTY]

    def test_overwrites_visible_in_program_order(self):
        timeline = []

        def writer(ctx):
            yield Write(1)
            yield Write(2)
            yield Write(3)

        def watcher(ctx):
            for _ in range(3):
                value = yield Read(0)
                timeline.append(value)
            yield Decide("done")

        kernel = SMKernel(
            [writer, watcher], ["a", "b"], t=0,
            scheduler=RoundRobinScheduler(),
            stop_when_decided=False,
        )
        kernel.run()
        # round robin: w1, r->1, w2, r->2, w3, r->3
        assert timeline == [1, 2, 3]


class TestProgramErrors:
    def test_exception_inside_program_propagates(self):
        def broken(ctx):
            yield Write("x")
            raise RuntimeError("protocol bug")

        kernel = SMKernel(
            [broken], ["a"], t=0,
            scheduler=RoundRobinScheduler(), stop_when_decided=False,
        )
        with pytest.raises(RuntimeError, match="protocol bug"):
            kernel.run()

    def test_non_generator_program_rejected(self):
        def not_a_generator(ctx):
            return 42

        kernel = SMKernel(
            [not_a_generator], ["a"], t=0,
            scheduler=RoundRobinScheduler(), stop_when_decided=False,
        )
        with pytest.raises((ProtocolError, AttributeError, TypeError)):
            kernel.run()


class TestContextHelpers:
    def test_others_excludes_self(self):
        from repro.shm.kernel import SMContext

        ctx = SMContext(pid=1, n=4, t=1, input_value="v")
        assert list(ctx.others()) == [0, 2, 3]


class TestBudgetInteraction:
    def test_byzantine_plus_crash_budget(self):
        def quick(ctx):
            yield Decide(ctx.input)

        with pytest.raises(ValueError):
            SMKernel(
                [quick] * 3, ["a", "b", "c"], t=1,
                scheduler=RoundRobinScheduler(),
                crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)}),
                byzantine=[1],  # 2 potentially faulty > t=1
            )

    def test_same_process_byzantine_and_crash_counts_once(self):
        def quick(ctx):
            yield Decide(ctx.input)

        kernel = SMKernel(
            [quick] * 3, ["a", "b", "c"], t=1,
            scheduler=RoundRobinScheduler(),
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)}),
            byzantine=[0],  # overlap: still within budget
        )
        kernel.run()
        assert kernel.faulty == {0}
