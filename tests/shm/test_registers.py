"""Tests for single-writer multi-reader atomic registers."""

import pytest

from repro.core.values import EMPTY
from repro.shm.registers import RegisterFile, SingleWriterViolation


class TestRegisterFile:
    def test_initially_empty(self):
        regs = RegisterFile(3)
        for owner in range(3):
            _, value = regs.read(0, owner)
            assert value is EMPTY

    def test_write_then_read(self):
        regs = RegisterFile(2)
        regs.write(0, 0, "hello")
        _, value = regs.read(1, 0)
        assert value == "hello"

    def test_overwrite(self):
        regs = RegisterFile(1)
        regs.write(0, 0, "a")
        regs.write(0, 0, "b")
        _, value = regs.read(0, 0)
        assert value == "b"

    def test_single_writer_enforced(self):
        regs = RegisterFile(2)
        with pytest.raises(SingleWriterViolation):
            regs.write(0, 1, "intrusion")

    def test_single_writer_enforced_even_for_any_writer(self):
        # The paper: "any other process -- even if Byzantine faulty --
        # is prohibited from writing to it."
        regs = RegisterFile(3)
        for writer in range(3):
            for owner in range(3):
                if writer != owner:
                    with pytest.raises(SingleWriterViolation):
                        regs.write(writer, owner, "x")

    def test_unknown_register_rejected(self):
        regs = RegisterFile(2)
        with pytest.raises(ValueError):
            regs.read(0, 5)
        with pytest.raises(ValueError):
            regs.write(5, 5, "x")

    def test_history_records_writes_in_order(self):
        regs = RegisterFile(1)
        regs.write(0, 0, "a")
        regs.read(0, 0)
        regs.write(0, 0, "b")
        history = regs.history(0)
        assert [entry.value for entry in history] == ["a", "b"]
        assert history[0].op_index < history[1].op_index

    def test_read_log(self):
        regs = RegisterFile(2)
        regs.write(0, 0, "a")
        regs.read(1, 0)
        log = regs.read_log(0)
        assert len(log) == 1
        assert log[0][1] == 1  # reader id
        assert log[0][2] == "a"

    def test_atomicity_oracle_accepts_sequential_history(self):
        regs = RegisterFile(3)
        regs.write(0, 0, "x")
        regs.read(1, 0)
        regs.write(0, 0, "y")
        regs.read(2, 0)
        regs.read(1, 2)
        assert regs.verify_atomicity()

    def test_needs_positive_size(self):
        with pytest.raises(ValueError):
            RegisterFile(0)

    def test_current_peek_does_not_stamp(self):
        regs = RegisterFile(1)
        regs.write(0, 0, "a")
        before = len(regs.read_log(0))
        assert regs.current(0) == "a"
        assert len(regs.read_log(0)) == before
