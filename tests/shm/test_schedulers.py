"""Tests for shared-memory process schedulers."""

import pytest

from repro.runtime.kernel import SchedulerStall
from repro.shm.kernel import SMKernel
from repro.shm.ops import Decide, Read, Write
from repro.shm.schedulers import (
    PredicateProcessScheduler,
    RandomProcessScheduler,
    RoundRobinScheduler,
    StagedScheduler,
)


def three_ops(ctx):
    yield Write(ctx.input)
    yield Read(ctx.pid)
    yield Decide(ctx.input)


def build(n, scheduler, programs=None, **kwargs):
    return SMKernel(
        programs or [three_ops] * n,
        [f"v{i}" for i in range(n)],
        t=0,
        scheduler=scheduler,
        stop_when_decided=False,
        **kwargs,
    )


def op_order(kernel):
    """Sequence of pids in write/read/decide trace order."""
    return [
        r.pid
        for r in kernel.trace
        if r.kind in ("write", "read", "decide")
    ]


class TestRoundRobin:
    def test_cycles_fairly(self):
        kernel = build(3, RoundRobinScheduler())
        kernel.run()
        order = op_order(kernel)
        assert order[:6] == [0, 1, 2, 0, 1, 2]

    def test_skips_finished_processes(self):
        def quick(ctx):
            yield Decide(ctx.input)

        kernel = build(2, RoundRobinScheduler(),
                       programs=[quick, three_ops])
        kernel.run()
        order = op_order(kernel)
        # p0 finishes after one op; the rest is all p1
        assert order[0] == 0
        assert set(order[1:]) == {1}


class TestRandomProcess:
    def test_reproducible(self):
        k1 = build(4, RandomProcessScheduler(2))
        k2 = build(4, RandomProcessScheduler(2))
        k1.run()
        k2.run()
        assert op_order(k1) == op_order(k2)

    def test_seeds_differ(self):
        orders = set()
        for seed in range(8):
            kernel = build(4, RandomProcessScheduler(seed))
            kernel.run()
            orders.add(tuple(op_order(kernel)))
        assert len(orders) > 1


class TestPredicate:
    def test_only_eligible_run(self):
        kernel = build(
            3,
            PredicateProcessScheduler(
                lambda k, pid: pid != 2 or k.has_decided(0)
            ),
        )
        kernel.run()
        order = op_order(kernel)
        first_p2 = order.index(2)
        assert 0 in order[:first_p2]  # p0 decided before p2 ran

    def test_strict_stall(self):
        kernel = build(
            2, PredicateProcessScheduler(lambda k, pid: False)
        )
        with pytest.raises(SchedulerStall):
            kernel.run()

    def test_release_on_stall(self):
        kernel = build(
            2,
            PredicateProcessScheduler(
                lambda k, pid: False, release_on_stall=True
            ),
        )
        result = kernel.run()
        assert len(result.outcome.decisions) == 2


class TestStaged:
    def test_stage_order(self):
        kernel = build(4, StagedScheduler([[2], [0, 1]]))
        kernel.run()
        order = op_order(kernel)
        # all of p2's ops precede any p0/p1 op; unlisted p3 runs last
        last_p2 = max(i for i, pid in enumerate(order) if pid == 2)
        first_p01 = min(i for i, pid in enumerate(order) if pid in (0, 1))
        first_p3 = min(i for i, pid in enumerate(order) if pid == 3)
        assert last_p2 < first_p01 < first_p3

    def test_stages_must_be_disjoint(self):
        with pytest.raises(ValueError):
            StagedScheduler([[0], [0, 1]])

    def test_crashed_stage_members_do_not_block(self):
        from repro.failures.crash import CrashPlan, CrashPoint

        kernel = SMKernel(
            [three_ops] * 3,
            ["a", "b", "c"],
            t=1,
            scheduler=StagedScheduler([[0], [1, 2]]),
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)}),
            stop_when_decided=False,
        )
        result = kernel.run()
        assert result.outcome.decisions.keys() == {1, 2}
