"""Differential oracle: same seeded workload, different configuration.

Two of the invariants are exact by construction -- the sweep engine
derives every run from ``(seed, index)``, so serial vs sharded must be
bit-identical, and trace retention is observational, so FULL vs COUNTERS
must be too.  The MP-vs-SM comparison is exact only at ``t = 0`` (the
failure-free quorum protocols are full-information and hence
schedule-independent); at ``t > 0`` the kernels explore different
schedules and the diff only requires both sides to be violation-free.
The batch-vs-scalar comparison is exact run-by-run: the vectorized
engine's plan is replayed through the scalar kernel and any per-run
discrepancy fails the diff.
"""

import dataclasses

import pytest

from repro.harness.sweep import SweepConfig
from repro.protocols.base import all_specs, get_spec
from repro.verify.differential import (
    SM_COUNTERPARTS,
    HistogramDiff,
    diff_batch_scalar,
    diff_mp_sm,
    diff_serial_parallel,
    diff_trace_modes,
    differential_check,
    sm_counterpart,
)

CONFIG = SweepConfig(runs=8, seed=17)


def test_serial_vs_parallel_identical():
    diff = diff_serial_parallel(
        get_spec("chaudhuri@mp-cr"), 5, 2, 1, CONFIG, jobs=2
    )
    assert diff.identical, diff.summary()
    assert diff.ok
    assert diff.delta() == {}


def test_full_vs_counters_identical():
    diff = diff_trace_modes(get_spec("protocol-b@mp-cr"), 5, 3, 1, CONFIG)
    assert diff.identical, diff.summary()
    assert diff.ok


def test_mp_vs_sm_strict_equality_at_t0():
    mp = get_spec("chaudhuri@mp-cr")
    sm = sm_counterpart(mp)
    assert sm is not None and sm.name == "sim-chaudhuri@sm-cr"
    diff = diff_mp_sm(mp, sm, 4, 2, 0, CONFIG)
    assert diff.required_equal, "t=0 must default to strict"
    assert diff.identical, diff.summary()
    assert diff.ok


def test_mp_vs_sm_nonstrict_with_failures_both_clean():
    mp = get_spec("protocol-b@mp-cr")
    diff = diff_mp_sm(mp, sm_counterpart(mp), 5, 3, 1, CONFIG)
    assert not diff.required_equal, "t>0 must default to reporting-only"
    assert diff.violations_a == 0 and diff.violations_b == 0
    assert diff.ok  # clean on both sides is enough without strictness


def test_strict_override_flags_divergence():
    # Force strictness at a t>0 point: if the histograms happen to
    # diverge, ok must go false; if they coincide, ok holds -- either
    # way ok == identical under required_equal with clean sides.
    mp = get_spec("protocol-b@mp-cr")
    diff = diff_mp_sm(mp, sm_counterpart(mp), 5, 3, 1, CONFIG, strict=True)
    assert diff.required_equal
    assert diff.ok == (diff.identical and not diff.violations_a
                       and not diff.violations_b)


def test_every_counterpart_pair_is_registered_and_compatible():
    for mp_name, sm_name in SM_COUNTERPARTS.items():
        mp, sm = get_spec(mp_name), get_spec(sm_name)
        assert not mp.is_shared_memory
        assert sm.is_shared_memory
        assert mp.validity == sm.validity, (mp_name, sm_name)


def test_sm_counterpart_none_for_sm_specs():
    assert sm_counterpart(get_spec("protocol-f@sm-cr")) is None


def test_differential_check_bundles_applicable_diffs():
    report = differential_check(get_spec("chaudhuri@mp-cr"), 4, 2, 0, CONFIG)
    labels = [(d.label_a, d.label_b) for d in report.diffs]
    # serial/parallel, FULL/COUNTERS, MP/SM, batch/scalar-replay
    assert len(report.diffs) == 4
    assert any("jobs=2" in b for _, b in labels)
    assert any("COUNTERS" in b for _, b in labels)
    assert any("sim-chaudhuri" in b for _, b in labels)
    assert any("scalar-replay" in b for _, b in labels)
    assert report.ok, report.summary()
    assert report.failing() == []
    assert "OK" in report.summary()


def test_differential_check_skips_mp_sm_without_counterpart():
    report = differential_check(get_spec("protocol-a@mp-cr"), 5, 2, 1, CONFIG)
    assert len(report.diffs) == 3  # no SM twin; batch still applies


def test_differential_check_skips_batch_for_sm_spec():
    report = differential_check(get_spec("protocol-f@sm-cr"), 5, 3, 1, CONFIG)
    labels = [d.label_b for d in report.diffs]
    assert not any("scalar-replay" in b for b in labels)


def test_batch_vs_scalar_identical():
    diff = diff_batch_scalar(get_spec("chaudhuri@mp-cr"), 5, 2, 1, CONFIG)
    assert diff.label_a == "chaudhuri@mp-cr[batch]"
    assert diff.label_b == "chaudhuri@mp-cr[scalar-replay]"
    assert diff.required_equal
    assert diff.mismatched_runs == 0
    assert diff.identical, diff.summary()
    assert diff.ok


def test_batch_vs_scalar_byzantine_spec_crash_restricted():
    # Byzantine-model specs are modelled under the crash-restricted
    # sub-adversary; the differential still replays them exactly.
    diff = diff_batch_scalar(get_spec("protocol-d@mp-byz"), 5, 2, 1, CONFIG)
    assert diff.ok, diff.summary()
    assert diff.mismatched_runs == 0


def test_histogram_diff_delta_and_ok_logic():
    diff = HistogramDiff(
        label_a="a", label_b="b",
        histogram_a={1: 5, 2: 3}, histogram_b={1: 5, 2: 1, 3: 2},
        violations_a=0, violations_b=0, required_equal=False,
    )
    assert not diff.identical
    assert diff.delta() == {2: 2, 3: -2}
    assert diff.ok  # divergence allowed when not required equal
    strict = dataclasses.replace(diff, required_equal=True)
    assert not strict.ok
    dirty = dataclasses.replace(diff, violations_a=1)
    assert not dirty.ok  # violations always fail, strict or not
    assert "allowed" in diff.summary()
    assert "REQUIRED EQUAL" in strict.summary()


def test_histogram_diff_mismatched_runs_always_fail():
    # Per-run mismatches fail the diff even when the aggregate
    # histograms collide and both sides are violation-free.
    diff = HistogramDiff(
        label_a="a", label_b="b",
        histogram_a={1: 5}, histogram_b={1: 5},
        violations_a=0, violations_b=0, required_equal=True,
        mismatched_runs=2,
    )
    assert diff.identical
    assert not diff.ok
    assert "2 run-by-run mismatches" in diff.summary()
    clean = dataclasses.replace(diff, mismatched_runs=0)
    assert clean.ok
    assert "mismatches" not in clean.summary()


@pytest.mark.parametrize(
    "mp_name", sorted(n for n in SM_COUNTERPARTS if "trivial" not in n)
)
def test_counterpart_sweeps_clean_at_t0(mp_name):
    """Failure-free strict equality holds for every non-trivial pair."""
    mp = get_spec(mp_name)
    sm = sm_counterpart(mp)
    n, k = 4, 2
    if not (mp.solvable(n, k, 0) and sm.solvable(n, k, 0)):
        pytest.skip(f"{mp_name} pair not solvable at n={n} k={k} t=0")
    diff = diff_mp_sm(mp, sm, n, k, 0, SweepConfig(runs=4, seed=5))
    assert diff.ok, diff.summary()
    assert diff.identical, diff.summary()


class TestDiffResumed:
    """Unit tests of the resumed-vs-uninterrupted comparator itself
    (the end-to-end chaos drill lives in tests/jobs/)."""

    @staticmethod
    def _result(records=None, campaign="c", seed=1, execution=None):
        from repro.harness.campaign import CampaignResult, PointRecord

        return CampaignResult(
            campaign=campaign,
            seed=seed,
            records=[PointRecord.from_json(r) for r in (records or [])],
            execution=execution,
        )

    RECORD = {
        "spec": "x", "n": 5, "k": 2, "t": 1, "runs": 3,
        "violations": 0, "max_distinct": 2, "engine": "scalar",
    }

    def test_identical_results_pass(self):
        from repro.verify import diff_resumed

        diff = diff_resumed(
            self._result([self.RECORD]), self._result([self.RECORD])
        )
        assert diff.ok
        assert "bit-identical" in diff.summary()

    def test_execution_metadata_is_ignored(self):
        # the resumed run legitimately carries a different supervision
        # story (retries, chaos events); only the aggregate must match
        from repro.verify import diff_resumed

        noisy = self._result(
            [self.RECORD], execution={"run_id": "c", "events": [1, 2]}
        )
        assert diff_resumed(noisy, self._result([self.RECORD])).ok

    def test_record_divergence_detected(self):
        from repro.verify import diff_resumed

        altered = dict(self.RECORD, violations=1)
        diff = diff_resumed(
            self._result([altered]), self._result([self.RECORD])
        )
        assert not diff.ok
        assert diff.mismatches[0][0] == 0
        assert "1 mismatched records" in diff.summary()

    def test_missing_record_detected(self):
        from repro.verify import diff_resumed

        diff = diff_resumed(
            self._result([]), self._result([self.RECORD])
        )
        assert not diff.ok
        assert "record counts differ 0/1" in diff.summary()

    def test_campaign_identity_checked(self):
        from repro.verify import diff_resumed

        diff = diff_resumed(
            self._result([self.RECORD], campaign="other"),
            self._result([self.RECORD]),
        )
        assert not diff.ok
        assert "identity" in diff.summary()

    def test_file_level_diff(self, tmp_path):
        from repro.verify import diff_resumed_files

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._result([self.RECORD]).save(a)
        self._result([self.RECORD]).save(b)
        diff = diff_resumed_files(a, b)
        assert diff.ok
        assert str(a) in diff.summary()
