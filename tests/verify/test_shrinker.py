"""The shrinker on a protocol that is actually broken.

:class:`~repro.protocols.ablations.ProtocolBStrictQuorum` (PROTOCOL B
with the ``n - 2t`` margin tightened to unanimity) violates SV2 in the
seeded divergent-crash run from :mod:`repro.protocols.ablations`.  That
gives the shrinker a real counterexample: these tests record the
violating schedule, minimize it, and check the contract -- strictly
smaller, still violating, and bit-identical under double replay.
"""

import pytest

from repro.core.problem import SCProblem
from repro.core.validity import SV2
from repro.failures.crash import CrashPlan, CrashPoint
from repro.net.schedulers import FifoScheduler
from repro.protocols.ablations import ProtocolBStrictQuorum
from repro.protocols.base import get_spec
from repro.runtime.kernel import MPKernel
from repro.runtime.replay import Recording, RecordingScheduler
from repro.runtime.traces import TraceMode
from repro.verify.oracles import safety_violations
from repro.verify.shrink import (
    SubsequenceScheduler,
    kernel_factory_for_spec,
    run_choices,
    shrink_recording,
    shrink_schedule,
)

N, K, T = 5, 3, 1
INPUTS = ["w", "v", "v", "v", "v"]
PROBLEM = SCProblem(n=N, k=K, t=T, validity=SV2)


def _factory(scheduler):
    """Fresh strict-quorum kernel for the divergent-crash instance."""
    return MPKernel(
        [ProtocolBStrictQuorum() for _ in range(N)],
        list(INPUTS),
        t=T,
        scheduler=scheduler,
        crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
        stop_when_decided=False,
        trace_mode=TraceMode.FULL,
    )


def _recorded_violation() -> Recording:
    """Record the broken run's full schedule."""
    scheduler = RecordingScheduler(FifoScheduler())
    _factory(scheduler).run()
    return scheduler.recording


def test_seeded_run_violates_sv2():
    result, _ = run_choices(_factory, _recorded_violation().choices, "mp")
    fired = {v.oracle for v in safety_violations(result, PROBLEM)}
    assert "validity:SV2" in fired


def test_shrink_produces_strictly_smaller_still_violating_schedule():
    recording = _recorded_violation()
    shrunk = shrink_recording(_factory, recording, PROBLEM)
    assert len(shrunk.minimized) < len(recording.choices)
    assert shrunk.reduction > 0
    assert any(v.oracle == "validity:SV2" for v in shrunk.violations)
    # The minimized schedule violates on a fresh replay, not just in the
    # shrinker's own bookkeeping.
    result, applied = run_choices(_factory, shrunk.minimized, "mp")
    assert applied == shrunk.minimized, "minimized schedule must be canonical"
    assert any(
        v.oracle == "validity:SV2" for v in safety_violations(result, PROBLEM)
    )


def test_minimized_schedule_replays_bit_identically_twice():
    shrunk = shrink_recording(_factory, _recorded_violation(), PROBLEM)
    first, applied_first = run_choices(_factory, shrunk.minimized, "mp")
    second, applied_second = run_choices(_factory, shrunk.minimized, "mp")
    assert applied_first == applied_second
    assert first.outcome == second.outcome
    assert first.ticks == second.ticks
    assert list(first.trace.of_kind("decide")) == list(
        second.trace.of_kind("decide")
    )


def test_minimized_schedule_is_one_minimal():
    """ddmin's guarantee: removing any single choice loses the violation
    or changes nothing (the schedule is 1-minimal, not globally minimal)."""
    shrunk = shrink_recording(_factory, _recorded_violation(), PROBLEM)
    for index in range(len(shrunk.minimized)):
        candidate = shrunk.minimized[:index] + shrunk.minimized[index + 1:]
        result, applied = run_choices(_factory, candidate, "mp")
        if tuple(applied) == tuple(shrunk.minimized):
            continue  # the dropped entry was inapplicable anyway
        assert not any(
            v.oracle == "validity:SV2"
            for v in safety_violations(result, PROBLEM)
        ), f"dropping choice {index} kept the violation: not 1-minimal"


def test_shrink_refuses_a_clean_schedule():
    # Healthy PROTOCOL B absorbs the divergent value; same schedule
    # shape, no violation, so there is nothing to shrink.
    spec = get_spec("protocol-b@mp-cr")
    factory, kind = kernel_factory_for_spec(
        spec, N, K, T, INPUTS,
        crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
        stop_when_decided=False,
    )
    scheduler = RecordingScheduler(FifoScheduler())
    factory(scheduler).run()
    with pytest.raises(ValueError, match="does not violate"):
        shrink_schedule(
            factory, scheduler.recording.choices, kind, problem=PROBLEM
        )


def test_shrink_requires_problem_or_predicate():
    with pytest.raises(ValueError, match="violates predicate or a problem"):
        shrink_schedule(_factory, (1, 2, 3), "mp")


def test_subsequence_scheduler_skips_inapplicable_choices():
    recording = _recorded_violation()
    # Interleave garbage seqs; tolerant replay must skip them and apply
    # exactly the original schedule.
    noisy = []
    for choice in recording.choices:
        noisy.extend((choice, 10_000 + choice))
    result, applied = run_choices(_factory, noisy, "mp")
    assert applied == recording.choices
    baseline, _ = run_choices(_factory, recording.choices, "mp")
    assert result.outcome == baseline.outcome


def test_subsequence_scheduler_rejects_unknown_kind():
    with pytest.raises(ValueError, match="'mp' or 'sm'"):
        SubsequenceScheduler((), "tcp")


def test_shrinker_on_sm_schedules():
    """SM kind end-to-end: shrink an agreement break of the trivial SM
    protocol run outside its solvable region (k=1, two distinct inputs)."""
    from repro.shm.schedulers import RoundRobinScheduler
    from repro.runtime.replay import RecordingProcessScheduler
    from repro.core.validity import SV1

    spec = get_spec("trivial@sm-cr")
    problem = SCProblem(n=2, k=1, t=0, validity=SV1)
    factory, kind = kernel_factory_for_spec(spec, 2, 1, 0, ["a", "b"])
    assert kind == "sm"
    scheduler = RecordingProcessScheduler(RoundRobinScheduler())
    factory(scheduler).run()
    shrunk = shrink_schedule(
        factory, scheduler.recording.choices, kind, problem=problem
    )
    assert any(v.oracle == "agreement" for v in shrunk.violations)
    assert len(shrunk.minimized) <= len(scheduler.recording.choices)
    again, applied = run_choices(factory, shrunk.minimized, kind)
    assert applied == shrunk.minimized
    assert again.outcome == shrunk.result.outcome
