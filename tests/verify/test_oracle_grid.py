"""Property test: the oracle stack is clean across the solvable grid.

Every registered protocol, at a sample of ``(k, t)`` points inside its
claimed solvable region, runs ``REPRO_VERIFY_RUNS`` seeded randomized
executions through the *full* oracle stack (fault budget, k-agreement,
validity, irrevocability, termination) with ``TraceMode.FULL`` so the
trace-level checks actually exercise records.  Zero violations expected:
any finding is either a protocol bug or an oracle bug, and both matter.

``REPRO_VERIFY_RUNS`` (env) scales the per-point run count so CI smoke
jobs can run the same grid cheaply.
"""

import os

import pytest

from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import all_specs
from repro.runtime.traces import TraceMode

RUNS = int(os.environ.get("REPRO_VERIFY_RUNS", "4"))
MAX_POINTS_PER_SPEC = 2
N = 5


def _grid_points():
    """(spec, n, k, t) sample of each spec's solvable region."""
    points = []
    for spec in all_specs():
        found = 0
        for t in (1, 0):  # prefer a faulty point, fall back to t=0
            for k in range(1, N + 1):
                if found >= MAX_POINTS_PER_SPEC:
                    break
                if spec.solvable(N, k, t):
                    points.append(pytest.param(
                        spec, N, k, t, id=f"{spec.name}-n{N}k{k}t{t}"
                    ))
                    found += 1
            if found >= MAX_POINTS_PER_SPEC:
                break
    return points


GRID = _grid_points()


def test_grid_covers_every_registered_spec():
    covered = {p.values[0].name for p in GRID}
    assert covered == {spec.name for spec in all_specs()}


@pytest.mark.parametrize("spec, n, k, t", GRID)
def test_oracle_stack_clean_on_solvable_point(spec, n, k, t):
    stats = sweep_spec(
        spec, n, k, t,
        SweepConfig(
            runs=RUNS,
            seed=20260805,
            trace_mode=TraceMode.FULL,
            verify=True,
        ),
    )
    assert stats.clean, "\n".join(v.detail for v in stats.violations)
    assert stats.runs == RUNS
    assert stats.max_distinct_decisions <= k
