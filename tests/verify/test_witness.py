"""Witness files: serialize, replay deterministically, oracle-check.

Covers the round trip (including sentinel values in decisions), the
determinism contract of ``verify_witness``, violating witnesses produced
by the shrinker, the attack harness's ``record_best_witness`` bridge,
and the ``repro verify-run`` CLI exit codes.
"""

import json

import pytest

from repro.cli import main
from repro.core.problem import SCProblem
from repro.core.validity import SV2
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.attack import record_best_witness, search_worst_run
from repro.net.schedulers import FifoScheduler
from repro.protocols.base import get_spec
from repro.runtime.replay import RecordingScheduler
from repro.verify.shrink import kernel_factory_for_spec
from repro.verify.witness import (
    Witness,
    crash_points_of,
    load_witness,
    replay_witness,
    save_witness,
    verify_witness,
)

SPEC = "protocol-b@mp-cr"
CRASH = {0: {"after_steps": 1}}


def _clean_witness() -> Witness:
    """A healthy PROTOCOL B run, recorded end to end."""
    factory, kind = kernel_factory_for_spec(
        get_spec(SPEC), 5, 3, 1, ["w", "v", "v", "v", "v"],
        crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
    )
    scheduler = RecordingScheduler(FifoScheduler())
    factory(scheduler).run()
    return Witness(
        spec=SPEC, n=5, k=3, t=1,
        inputs=("w", "v", "v", "v", "v"),
        choices=scheduler.recording.choices,
        kind=kind,
        crash_points=CRASH,
        note="fifo reference run",
    )


def test_json_round_trip():
    witness = _clean_witness()
    clone = Witness.from_json(witness.to_json())
    assert clone == witness
    data = json.loads(witness.to_json())
    assert data["format"] == "repro-witness/1"
    assert data["crash_points"] == {"0": {"after_steps": 1}}


def test_from_json_rejects_other_formats():
    with pytest.raises(ValueError, match="repro-witness/1"):
        Witness.from_json(json.dumps({"format": "something-else"}))


def test_replay_is_deterministic_and_clean():
    report = verify_witness(_clean_witness())
    assert report.deterministic
    assert report.violations == []
    assert "clean" in report.summary()


def test_replay_rebuilds_crash_pattern():
    result, applied = replay_witness(_clean_witness())
    assert 0 in result.outcome.faulty
    assert applied  # FIFO schedule applied as recorded


def test_crash_points_of_supports_static_adversaries():
    assert crash_points_of(None) == {}
    assert crash_points_of(
        CrashPlan({2: CrashPoint(after_sends=3)})
    ) == {2: {"after_sends": 3}}
    random_crashes = RandomCrashes(5, 2, seed=9)
    points = crash_points_of(random_crashes)
    assert set(points) == set(random_crashes.potentially_faulty())

    class Dynamic:
        pass

    with pytest.raises(ValueError, match="static crash plans"):
        crash_points_of(Dynamic())


def test_violating_witness_reports_expected_oracles():
    """An attack outside the solvable region yields a witness whose
    replay still shows the agreement break."""
    spec = get_spec("trivial@mp-cr")
    result = search_worst_run(
        spec, n=3, k=1, t=0, attempts=20, seed=1, max_ticks=20_000,
    )
    assert result.best_distinct > 1  # trivial protocol cannot do k=1
    witness = record_best_witness(result, max_ticks=20_000)
    witness.expect = ("agreement",)
    report = verify_witness(witness)
    assert report.deterministic
    assert report.demonstrates_expected, report.summary()


def test_save_and_load(tmp_path):
    path = tmp_path / "witness.json"
    witness = _clean_witness()
    save_witness(witness, path)
    assert load_witness(path) == witness


def test_record_best_witness_rejects_byzantine_attempts():
    spec = get_spec("protocol-d@mp-byz")
    result = search_worst_run(
        spec, n=7, k=2, t=1, attempts=6, seed=2, max_ticks=100_000,
    )
    if result.best_attempt_seed is None:
        pytest.skip("search found no scoring attempt")
    try:
        record_best_witness(result, max_ticks=100_000)
    except ValueError as reason:
        assert "Byzantine" in str(reason)
    # Some attempts draw zero Byzantine victims and serialize fine.


def test_record_best_witness_requires_a_best_attempt():
    from repro.harness.attack import AttackResult

    empty = AttackResult(
        spec_name=SPEC, n=5, k=3, t=1, attempts=0,
        best_distinct=0, best_report=None, violations_found=0,
    )
    with pytest.raises(ValueError, match="no attempt"):
        record_best_witness(empty)


class TestVerifyRunCLI:
    def test_clean_witness_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        save_witness(_clean_witness(), path)
        assert main(["verify-run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "replay deterministic" in out

    def test_violating_witness_exits_one(self, tmp_path, capsys):
        spec = get_spec("trivial@mp-cr")
        result = search_worst_run(
            spec, n=3, k=1, t=0, attempts=20, seed=1, max_ticks=20_000,
        )
        path = tmp_path / "w.json"
        save_witness(record_best_witness(result, max_ticks=20_000), path)
        assert main(["verify-run", str(path)]) == 1
        assert "agreement" in capsys.readouterr().out

    def test_unreadable_witness_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["verify-run", str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "v0"}))
        assert main(["verify-run", str(bad)]) == 2

    def test_attack_save_witness_round_trip(self, tmp_path, capsys):
        path = tmp_path / "attack.json"
        code = main([
            "attack", SPEC, "--n", "5", "--k", "3", "--t", "1",
            "--attempts", "4", "--verify", "--save-witness", str(path),
        ])
        assert code == 0
        assert path.exists()
        assert main(["verify-run", str(path)]) == 0
