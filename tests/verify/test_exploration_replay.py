"""Exploration counterexamples must replay from scratch.

The fast-fork explorer executes nearly every step of a violating path
on a kernel that was restored from a snapshot.  Its soundness contract
is that the recorded choice path nevertheless reproduces the violation
on a *fresh* kernel -- :func:`exploration_witnesses` turns explorer
violations into replayable witness files and
:func:`confirm_exploration` re-executes them through the oracle stack.

The violating instances here judge registered protocols against a
validity condition stricter than the one they solve: under a partial
broadcast crash both PROTOCOL A (message passing) and PROTOCOL E
(shared memory) decide values SV2 forbids.
"""

import pytest

from repro.core.validity import SV2
from repro.failures.crash import (
    CrashPlan,
    CrashPoint,
    CrashWhenOthersDecide,
)
from repro.harness.exhaustive import SpecFactory, explore_mp, explore_sm
from repro.verify.witness import (
    Witness,
    confirm_exploration,
    exploration_witnesses,
)

MP_SPEC = "protocol-a@mp-cr"
MP_INPUTS = ["w", "v", "v"]
MP_PLAN = CrashPlan({0: CrashPoint(after_sends=2)})

SM_SPEC = "protocol-e@sm-cr"
SM_INPUTS = ["b", "a"]
SM_PLAN = CrashPlan({0: CrashPoint(after_steps=2)})


class _StubExploration:
    """Duck-typed stand-in carrying hand-built violation records."""

    def __init__(self, violations):
        self.violations = violations


def _mp_exploration(**kwargs):
    return explore_mp(
        SpecFactory(MP_SPEC, n=3, k=2, t=1), MP_INPUTS, k=2, t=1,
        validity=SV2, crash_adversary=MP_PLAN, **kwargs,
    )


def _sm_exploration():
    return explore_sm(
        SpecFactory(SM_SPEC, n=2, k=2, t=2), SM_INPUTS, k=2, t=2,
        validity=SV2, crash_adversary=SM_PLAN,
    )


class TestExplorationWitnesses:
    def test_mp_violation_becomes_witness(self):
        exploration = _mp_exploration()
        assert exploration.exhausted and not exploration.all_ok
        witnesses = exploration_witnesses(
            exploration, MP_SPEC, MP_INPUTS, 2, 1,
            crash_adversary=MP_PLAN, validity="SV2",
        )
        assert len(witnesses) == len(exploration.violations)
        first = witnesses[0]
        assert first.kind == "mp"
        assert first.choices == exploration.violations[0][0]
        assert first.expect == ("validity:SV2",)
        assert first.crash_points == {0: {"after_sends": 2}}

    def test_sm_violation_becomes_witness(self):
        exploration = _sm_exploration()
        assert exploration.exhausted and not exploration.all_ok
        witnesses = exploration_witnesses(
            exploration, SM_SPEC, SM_INPUTS, 2, 2,
            crash_adversary=SM_PLAN, validity="SV2",
        )
        assert witnesses and all(w.kind == "sm" for w in witnesses)

    def test_witness_round_trips_as_json(self):
        exploration = _mp_exploration()
        witness = exploration_witnesses(
            exploration, MP_SPEC, MP_INPUTS, 2, 1,
            crash_adversary=MP_PLAN, validity="SV2",
        )[0]
        assert Witness.from_json(witness.to_json()) == witness

    def test_validity_defaults_to_spec_condition(self):
        stub = _StubExploration([((0, 1), {"validity": "broken"})])
        witness = exploration_witnesses(stub, MP_SPEC, MP_INPUTS, 2, 1)[0]
        # protocol-a@mp-cr registers RV2
        assert witness.validity == "RV2"
        assert witness.expect == ("validity:RV2",)

    def test_termination_failures_not_expected(self):
        """A choice-list replay looks truncated, so the termination
        oracle is skipped on replay; expecting it would always fail."""
        stub = _StubExploration(
            [((0, 1, 2), {"termination": "stalled", "agreement": "split"})]
        )
        witness = exploration_witnesses(
            stub, MP_SPEC, MP_INPUTS, 2, 1, validity="SV2",
        )[0]
        assert witness.expect == ("agreement",)

    def test_oracle_judge_keys_pass_through(self):
        """``explore_mp(verify=True)`` keys failures by oracle name
        already; only the bare judge's ``"validity"`` key is remapped."""
        stub = _StubExploration([((0,), {"validity:SV2": "detail"})])
        witness = exploration_witnesses(
            stub, MP_SPEC, MP_INPUTS, 2, 1, validity="SV2",
        )[0]
        assert witness.expect == ("validity:SV2",)

    def test_dynamic_adversary_rejected(self):
        stub = _StubExploration([((0,), {"agreement": "split"})])
        with pytest.raises(ValueError, match="static crash plans"):
            exploration_witnesses(
                stub, MP_SPEC, MP_INPUTS, 2, 1,
                crash_adversary=CrashWhenOthersDecide([0], [1, 2]),
            )


class TestConfirmExploration:
    def test_mp_counterexamples_replay(self):
        exploration = _mp_exploration()
        reports = confirm_exploration(
            exploration, MP_SPEC, MP_INPUTS, 2, 1,
            crash_adversary=MP_PLAN, validity="SV2",
        )
        assert len(reports) == len(exploration.violations)
        assert all(r.deterministic for r in reports)
        assert all(r.demonstrates_expected for r in reports)

    def test_por_counterexamples_replay(self):
        """POR picks one representative schedule per equivalence class;
        those representatives must be real executions too."""
        exploration = _mp_exploration(por=True)
        assert exploration.sleep_pruned > 0
        confirm_exploration(
            exploration, MP_SPEC, MP_INPUTS, 2, 1,
            crash_adversary=MP_PLAN, validity="SV2",
        )

    def test_sm_counterexamples_replay(self):
        exploration = _sm_exploration()
        reports = confirm_exploration(
            exploration, SM_SPEC, SM_INPUTS, 2, 2,
            crash_adversary=SM_PLAN, validity="SV2",
        )
        assert reports and all(r.deterministic for r in reports)
        assert all(r.demonstrates_expected for r in reports)

    def test_clean_exploration_yields_no_reports(self):
        exploration = explore_mp(
            SpecFactory(MP_SPEC, n=3, k=2, t=1), MP_INPUTS, k=2, t=1,
            validity=SV2,
        )
        assert exploration.all_ok
        assert confirm_exploration(
            exploration, MP_SPEC, MP_INPUTS, 2, 1, validity="SV2",
        ) == []

    def test_unreproducible_violation_raises(self):
        """A fabricated violation on a clean path must be caught: the
        replay demonstrates none of the claimed oracles."""
        stub = _StubExploration(
            [((0, 1, 2), {"agreement": "never actually happened"})]
        )
        with pytest.raises(ValueError, match="failed to replay"):
            confirm_exploration(
                stub, MP_SPEC, MP_INPUTS, 2, 1, validity="SV2",
            )
