"""Adversarial edge cases for the validity oracles.

The six paper conditions differ exactly in how they treat faulty
processes, so the interesting inputs are hand-built outcomes where the
fault pattern is the whole story: a Byzantine process whose *claimed*
input diverges (SV2 fires where RV2 is vacuous), failure-free runs
(the only place WV1/WV2 say anything), and the ``t = 0`` degenerate
problem where the fault budget itself is the first oracle to fire.
"""

import pytest

from repro.core.problem import Outcome, SCProblem
from repro.core.validity import RV1, RV2, SV1, SV2, WV1, WV2, by_code
from repro.verify.oracles import (
    FaultBudgetOracle,
    ValidityOracle,
    all_validity_oracles,
    check_execution,
    outcome_result,
)


def _violations(outcome, problem, condition):
    return ValidityOracle(condition).check(outcome_result(outcome), problem)


def _problem(n, k, t, condition):
    return SCProblem(n=n, k=k, t=t, validity=condition)


class TestByzantineDivergentInput:
    """All *correct* inputs equal, one Byzantine claims a different one.

    SV2 quantifies over correct inputs only: they are unanimous, so the
    correct processes must decide that value -- deciding the Byzantine
    value breaks SV2.  RV2 quantifies over all inputs: the divergent
    claim voids unanimity and RV2 holds vacuously.  This divergence is
    the paper's reason for having both strong and regular variants.
    """

    OUTCOME = Outcome(
        n=4,
        inputs={0: "v", 1: "v", 2: "v", 3: "w"},
        decisions={0: "w", 1: "w", 2: "w"},
        faulty=frozenset({3}),
    )

    def test_sv2_fires(self):
        problem = _problem(4, 1, 1, SV2)
        found = _violations(self.OUTCOME, problem, SV2)
        assert len(found) == 1
        assert found[0].oracle == "validity:SV2"

    def test_rv2_vacuous(self):
        problem = _problem(4, 1, 1, RV2)
        assert _violations(self.OUTCOME, problem, RV2) == []

    def test_sv1_fires_rv1_does_not(self):
        # Same asymmetry one level down: "w" is not a *correct* input
        # (SV1 fires) but is *some* process's input (RV1 holds).
        problem = _problem(4, 1, 1, SV1)
        assert _violations(self.OUTCOME, problem, SV1)
        assert _violations(self.OUTCOME, problem, RV1) == []

    def test_full_stack_flags_only_the_strong_conditions(self):
        problem = _problem(4, 1, 1, SV2)
        fired = {
            v.oracle
            for v in check_execution(
                outcome_result(self.OUTCOME), problem,
                all_validity_oracles(),
            )
        }
        assert fired == {"validity:SV1", "validity:SV2"}


class TestFailureFreeWeakConditions:
    """WV1/WV2 constrain *all* processes, but only in failure-free runs."""

    def test_wv1_fires_on_zero_failures(self):
        outcome = Outcome(
            n=3,
            inputs={0: "a", 1: "b", 2: "c"},
            decisions={0: "a", 1: "b", 2: "z"},  # "z" is nobody's input
            faulty=frozenset(),
        )
        problem = _problem(3, 3, 0, WV1)
        found = _violations(outcome, problem, WV1)
        assert len(found) == 1
        assert "failure-free" in found[0].detail

    def test_wv1_vacuous_once_anything_fails(self):
        outcome = Outcome(
            n=3,
            inputs={0: "a", 1: "b", 2: "c"},
            decisions={0: "z", 1: "z"},
            faulty=frozenset({2}),
        )
        problem = _problem(3, 3, 1, WV1)
        assert _violations(outcome, problem, WV1) == []
        # ... where RV1 (no failure-free guard) still fires.
        assert _violations(outcome, problem, RV1)

    def test_wv2_constrains_even_faulty_decisions(self):
        # Unlike SV2/RV2, WV2 reads *all* decisions: in a failure-free
        # unanimous run every recorded decision must be the input value.
        outcome = Outcome(
            n=3,
            inputs={0: "v", 1: "v", 2: "v"},
            decisions={0: "v", 1: "v", 2: "x"},
            faulty=frozenset(),
        )
        problem = _problem(3, 1, 0, WV2)
        assert _violations(outcome, problem, WV2)

    def test_wv2_vacuous_without_unanimity(self):
        outcome = Outcome(
            n=3,
            inputs={0: "v", 1: "v", 2: "u"},
            decisions={0: "x", 1: "x", 2: "x"},
            faulty=frozenset(),
        )
        problem = _problem(3, 1, 0, WV2)
        assert _violations(outcome, problem, WV2) == []


class TestDegenerateBudget:
    """``t = 0``: any failure at all is outside the adversary model."""

    def test_fault_budget_fires_first_and_short_circuits(self):
        outcome = Outcome(
            n=3,
            inputs={0: "v", 1: "v", 2: "v"},
            decisions={0: "x", 1: "y"},  # would break SV2 *and* agreement
            faulty=frozenset({2}),
        )
        problem = _problem(3, 1, 0, SV2)
        found = check_execution(outcome_result(outcome), problem)
        assert [v.oracle for v in found] == ["fault-budget"]

    def test_budget_oracle_quiet_inside_budget(self):
        outcome = Outcome(
            n=3,
            inputs={0: "v", 1: "v", 2: "v"},
            decisions={0: "v", 1: "v", 2: "v"},
            faulty=frozenset(),
        )
        problem = _problem(3, 1, 0, SV2)
        assert FaultBudgetOracle().check(outcome_result(outcome), problem) == []
        assert check_execution(outcome_result(outcome), problem) == []

    def test_t0_failure_free_all_six_conditions_meaningful(self):
        # With no failures the strong/regular/weak split collapses: a
        # non-input decision violates every variant simultaneously.
        outcome = Outcome(
            n=3,
            inputs={0: "v", 1: "v", 2: "v"},
            decisions={0: "z", 1: "z", 2: "z"},
            faulty=frozenset(),
        )
        problem = _problem(3, 1, 0, SV1)
        fired = {
            v.oracle
            for v in check_execution(
                outcome_result(outcome), problem, all_validity_oracles()
            )
        }
        assert fired == {
            "validity:SV1", "validity:SV2", "validity:RV1",
            "validity:RV2", "validity:WV1", "validity:WV2",
        }


def test_validity_oracle_defaults_to_problem_condition():
    outcome = Outcome(
        n=2,
        inputs={0: "v", 1: "v"},
        decisions={0: "z", 1: "z"},
        faulty=frozenset(),
    )
    problem = _problem(2, 1, 0, by_code("RV1"))
    found = ValidityOracle().check(outcome_result(outcome), problem)
    assert [v.oracle for v in found] == ["validity:RV1"]


def test_every_condition_has_a_pinned_oracle():
    names = {oracle.name for oracle in all_validity_oracles()}
    assert names == {
        f"validity:{code}" for code in ("SV1", "SV2", "RV1", "RV2", "WV1", "WV2")
    }
