"""Cross-cutting property-based tests.

Per-protocol tests pin each protocol's behaviour; the properties here
quantify across the whole registry and both kernels:

* every registered protocol, at any point of its claimed region, under
  any seeded schedule and in-budget failure pattern, satisfies its
  ``SC(k, t, C)`` instance;
* the network axioms hold on every message-passing run;
* register atomicity holds on every shared-memory run;
* a protocol's spec region never contradicts the solvability classifier.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvability import Solvability, classify
from repro.core.validity import by_code
from repro.harness.runner import run_spec
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.net.network import verify_network_axioms
from repro.protocols.base import all_specs
from repro.models import Model

ALL_SPECS = all_specs()
MP_SPECS = [s for s in ALL_SPECS if not s.is_shared_memory]
SM_SPECS = [s for s in ALL_SPECS if s.is_shared_memory]


def _solvable_point(spec, n, rng):
    candidates = [
        (k, t)
        for k in range(2, n)
        for t in range(1, n + 1)
        if spec.solvable(n, k, t)
    ]
    if not candidates:
        return None
    return rng.choice(candidates)


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(ALL_SPECS),
    st.integers(min_value=5, max_value=8),
    st.integers(min_value=0, max_value=10**6),
)
def test_every_spec_clean_in_its_region(spec, n, seed):
    rng = random.Random(seed)
    point = _solvable_point(spec, n, rng)
    if point is None:
        return
    k, t = point
    stats = sweep_spec(spec, n, k, t, SweepConfig(runs=4, seed=seed))
    assert stats.clean, stats.violations[:2]


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(MP_SPECS),
    st.integers(min_value=4, max_value=7),
    st.integers(min_value=0, max_value=10**6),
)
def test_network_axioms_on_every_mp_run(spec, n, seed):
    from repro.failures.crash import RandomCrashes
    from repro.net.schedulers import RandomScheduler

    rng = random.Random(seed)
    point = _solvable_point(spec, n, rng)
    if point is None:
        return
    k, t = point
    crash = RandomCrashes(n, t, seed=seed) if spec.model.is_crash else None
    report = run_spec(
        spec, n, k, t,
        [f"v{i}" for i in range(n)],
        scheduler=RandomScheduler(seed),
        crash_adversary=crash,
    )
    axioms = verify_network_axioms(report.result.trace)
    assert axioms.reliable, axioms


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(SM_SPECS),
    st.integers(min_value=4, max_value=7),
    st.integers(min_value=0, max_value=10**6),
)
def test_register_atomicity_on_every_sm_run(spec, n, seed):
    from repro.core.validity import by_code as _by_code
    from repro.failures.crash import RandomCrashes
    from repro.shm.kernel import SMKernel
    from repro.shm.schedulers import RandomProcessScheduler

    rng = random.Random(seed)
    point = _solvable_point(spec, n, rng)
    if point is None:
        return
    k, t = point
    program = spec.make(n, k, t)
    kernel = SMKernel(
        [program] * n,
        [f"v{i}" for i in range(n)],
        t=t,
        scheduler=RandomProcessScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed)
        if spec.model.is_crash else None,
    )
    kernel.run()
    assert kernel.registers.verify_atomicity()


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from(ALL_SPECS),
    st.integers(min_value=4, max_value=24),
    st.data(),
)
def test_spec_regions_never_contradict_classifier(spec, n, data):
    """A point a protocol claims solvable is never classified IMPOSSIBLE."""
    k = data.draw(st.integers(min_value=2, max_value=n - 1))
    t = data.draw(st.integers(min_value=1, max_value=n))
    if not spec.solvable(n, k, t):
        return
    verdict = classify(spec.model, by_code(spec.validity), n, k, t)
    assert verdict.status is Solvability.POSSIBLE, (spec.name, n, k, t, verdict)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_simulation_equivalence(seed):
    """A protocol and its SIMULATION satisfy the same SC instance."""
    from repro.core.validity import RV1
    from repro.harness.runner import run_mp, run_sm
    from repro.protocols.chaudhuri import ChaudhuriKSet
    from repro.protocols.simulation import simulate_mp_over_sm
    from repro.net.schedulers import RandomScheduler
    from repro.shm.schedulers import RandomProcessScheduler

    rng = random.Random(seed)
    n = rng.randint(4, 6)
    k = rng.randint(2, n - 1)
    t = rng.randint(1, k - 1)
    inputs = [rng.choice("abcd") for _ in range(n)]

    native = run_mp(
        [ChaudhuriKSet() for _ in range(n)], inputs, k, t, RV1,
        scheduler=RandomScheduler(seed),
    )
    simulated = run_sm(
        [simulate_mp_over_sm(ChaudhuriKSet)] * n, inputs, k, t, RV1,
        scheduler=RandomProcessScheduler(seed),
    )
    assert native.ok and simulated.ok
    # both decision sets come from the t+1 smallest inputs
    lowest = set(sorted(set(inputs))[: t + 1])
    assert native.outcome.correct_decision_values() <= lowest
    assert simulated.outcome.correct_decision_values() <= lowest
