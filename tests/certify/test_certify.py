"""The claims-certification tier: ``repro.verify.certify_claims``.

Certification is the repo's end-to-end statement that the paper's
claimed-region table is *checked*, not transcribed: solvable claims come
back from clean exhaustive sweeps, impossibility claims come back with a
replayed counterexample.  These tests pin the report format, the verdict
semantics (including the lossy-store escalation invariant), witness
replayability, and the CLI baseline guard used by the certify-smoke CI
job.
"""

import json

import pytest

from repro.harness.exhaustive import VisitedSpec
from repro.verify.certify import (
    REPORT_FORMAT,
    VERDICTS,
    CertificationReport,
    ClaimResult,
    PointResult,
    certify_claims,
)
from repro.verify.witness import load_witness, verify_witness


@pytest.fixture(scope="module")
def trivial_report(tmp_path_factory):
    """Full n=3 grid of the trivial claim, witnesses saved.

    ``trivial@mp-cr`` decides own input: solvable iff k = n, impossible
    below, so one sweep exercises both the CONFIRMED_SOLVABLE and the
    COUNTEREXAMPLE_CONFIRMED paths.
    """
    witness_dir = tmp_path_factory.mktemp("witnesses")
    report = certify_claims(
        n=3, specs=["trivial@mp-cr"], witness_dir=witness_dir,
    )
    return report


class TestReportStructure:
    def test_one_claim_full_grid(self, trivial_report):
        assert len(trivial_report.claims) == 1
        claim = trivial_report.claims[0]
        assert claim.spec_name == "trivial@mp-cr"
        assert len(claim.points) == 9  # k in 1..3 x t in 0..2
        assert trivial_report.ok and claim.ok

    def test_verdicts_are_known(self, trivial_report):
        for point in trivial_report.claims[0].points:
            assert point.verdict in VERDICTS

    def test_both_certification_paths_exercised(self, trivial_report):
        counts = trivial_report.verdict_counts()
        assert counts["CONFIRMED_SOLVABLE"] > 0
        assert counts["COUNTEREXAMPLE_CONFIRMED"] > 0
        assert counts["REFUTED"] == 0
        assert counts["COUNTEREXAMPLE_MISSING"] == 0

    def test_verdict_counts_cover_every_point(self, trivial_report):
        counts = trivial_report.verdict_counts()
        assert sum(counts.values()) == len(trivial_report.claims[0].points)

    def test_inside_points_swept_clean(self, trivial_report):
        for point in trivial_report.claims[0].points:
            if point.inside:
                assert point.verdict == "CONFIRMED_SOLVABLE"
                assert point.explorations > 0
                assert point.states > 0

    def test_json_round_trip(self, trivial_report):
        blob = trivial_report.to_json()
        data = json.loads(blob)
        assert data == trivial_report.to_dict()
        assert data["format"] == REPORT_FORMAT
        assert data["n"] == 3
        assert data["ok"] is True
        assert data["total_states"] == trivial_report.total_states

    def test_save(self, trivial_report, tmp_path):
        path = tmp_path / "report.json"
        trivial_report.save(path)
        assert json.loads(path.read_text()) == trivial_report.to_dict()


class TestWitnesses:
    def test_counterexamples_replay_through_the_oracle_stack(
        self, trivial_report
    ):
        confirmed = [
            p for p in trivial_report.claims[0].points
            if p.verdict == "COUNTEREXAMPLE_CONFIRMED"
        ]
        assert confirmed
        for point in confirmed:
            assert point.witness_path, "witness_dir was set"
            witness = load_witness(point.witness_path)
            verdict = verify_witness(witness)
            assert verdict.deterministic
            assert verdict.violations
            assert verdict.demonstrates_expected


class TestLossyStores:
    def test_bitstate_never_flips_an_impossibility_verdict(self):
        """A saturated 64-bit array false-hits constantly; the escalation
        to the exact store must still deliver the counterexample."""
        report = certify_claims(
            n=3, specs=["trivial@mp-cr"], ks=[1], ts=[1],
            visited=VisitedSpec(
                kind="bitstate", bitstate_bits=64, bitstate_hashes=2
            ),
        )
        (point,) = report.claims[0].points
        assert point.verdict == "COUNTEREXAMPLE_CONFIRMED"
        assert point.verdict != "COUNTEREXAMPLE_MISSING"

    def test_compact_store_agrees_with_exact(self):
        exact = certify_claims(n=3, specs=["trivial@mp-cr"], ks=[3], ts=[1])
        compact = certify_claims(
            n=3, specs=["trivial@mp-cr"], ks=[3], ts=[1], visited="compact",
        )
        assert (
            [p.verdict for p in exact.claims[0].points]
            == [p.verdict for p in compact.claims[0].points]
        )


class TestSharedFrontierCertification:
    def test_shared_requires_jobs(self):
        with pytest.raises(ValueError):
            certify_claims(
                n=3, specs=["trivial@mp-cr"], ks=[3], ts=[0], shared=True,
            )

    def test_shared_early_exit_report(self):
        """The work-stealing engine with early exit certifies the same
        verdicts; the report records the mode and the shared store is
        treated as lossy (escalation still lands the counterexample)."""
        report = certify_claims(
            n=3, specs=["trivial@mp-cr"], ks=[1, 3], ts=[1],
            visited="compact", jobs=2, shared=True, stop_on_violation=True,
        )
        assert report.shared and report.stop_on_violation
        verdicts = {
            (p.k, p.t): p.verdict for p in report.claims[0].points
        }
        assert verdicts[(1, 1)] == "COUNTEREXAMPLE_CONFIRMED"
        assert verdicts[(3, 1)] == "CONFIRMED_SOLVABLE"
        data = report.to_dict()
        assert data["shared"] is True
        assert data["stop_on_violation"] is True
        for claim in data["claims"]:
            for point in claim["points"]:
                assert point["shared"] is True
                assert "stolen_subtrees" in point
                assert "reexplored_states" in point
                assert "symmetry_reason" in point

    def test_serial_report_records_modes_off(self, trivial_report):
        data = trivial_report.to_dict()
        assert data["shared"] is False
        assert data["stop_on_violation"] is False

    def test_symmetry_refusal_reason_surfaced(self):
        """When symmetry cannot engage, the report says why per point."""
        report = certify_claims(
            n=3, specs=["trivial@mp-cr"], ks=[3], ts=[0], symmetry=True,
        )
        (point,) = report.claims[0].points
        # the all-distinct-inputs instance always refuses (trivial group)
        assert "trivial symmetry group" in point.symmetry_reason


class TestSweepFilters:
    def test_sim_claims_skipped_by_default(self):
        # Empty grids keep this structural: the sweep visits every claim
        # but certifies zero points.
        report = certify_claims(n=3, ks=[], ts=[])
        assert any(
            name.startswith("sim-") for name in report.skipped_specs
        )
        assert all(
            not claim.spec_name.startswith("sim-")
            for claim in report.claims
        )

    def test_grid_restriction(self):
        report = certify_claims(n=3, specs=["trivial@mp-cr"], ks=[3], ts=[0])
        (point,) = report.claims[0].points
        assert (point.k, point.t) == (3, 0)

    def test_progress_callback_fires_per_point(self):
        lines = []
        certify_claims(
            n=3, specs=["trivial@mp-cr"], ks=[3], ts=[0],
            progress=lines.append,
        )
        assert len(lines) == 1
        assert "trivial@mp-cr k=3 t=0" in lines[0]


def _fake_report():
    claim = ClaimResult(
        spec_name="fake@mp-cr", protocol="fake", model="mp-cr",
        validity="SV2", lemma="L0",
        points=[
            PointResult(
                k=2, t=1, inside=True, classification="POSSIBLE",
                verdict="CONFIRMED_SOLVABLE", states=100,
            ),
        ],
    )
    return CertificationReport(
        n=3, visited="exact", symmetry=True, claims=[claim],
    )


class TestBaselineGuard:
    def test_round_trip_passes(self):
        from repro.cli import _certify_baseline, _check_certify_baseline

        report = _fake_report()
        baseline = _certify_baseline(report)
        assert baseline["format"] == "repro-certify-baseline/1"
        assert baseline["points"]["fake@mp-cr:k=2:t=1"] == {
            "verdict": "CONFIRMED_SOLVABLE", "states": 100,
        }
        assert _check_certify_baseline(report, baseline) == []

    def test_verdict_change_fails(self):
        from repro.cli import _certify_baseline, _check_certify_baseline

        report = _fake_report()
        baseline = _certify_baseline(report)
        report.claims[0].points[0].verdict = "REFUTED"
        failures = _check_certify_baseline(report, baseline)
        assert failures and "verdict" in failures[0]

    def test_state_regression_fails(self):
        from repro.cli import _certify_baseline, _check_certify_baseline

        report = _fake_report()
        baseline = _certify_baseline(report)
        report.claims[0].points[0].states = 101
        failures = _check_certify_baseline(report, baseline)
        assert failures and "regressed" in failures[0]

    def test_fewer_states_is_fine(self):
        from repro.cli import _certify_baseline, _check_certify_baseline

        report = _fake_report()
        baseline = _certify_baseline(report)
        report.claims[0].points[0].states = 50
        assert _check_certify_baseline(report, baseline) == []

    def test_missing_point_fails(self):
        from repro.cli import _certify_baseline, _check_certify_baseline

        report = _fake_report()
        baseline = _certify_baseline(report)
        report.claims[0].points = []
        failures = _check_certify_baseline(report, baseline)
        assert failures and "missing" in failures[0]


class TestCli:
    def test_certify_exit_zero_and_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main([
            "certify", "--n", "3", "--specs", "trivial@mp-cr",
            "--ks", "3", "--ts", "0", "--quiet", "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["format"] == REPORT_FORMAT
        assert "1 CONFIRMED_SOLVABLE" in capsys.readouterr().out

    def test_baseline_write_then_check(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        argv = [
            "certify", "--n", "3", "--specs", "trivial@mp-cr",
            "--ks", "3", "--ts", "0", "--quiet",
        ]
        assert main(argv + ["--write-baseline", str(baseline)]) == 0
        assert main(argv + ["--check-baseline", str(baseline)]) == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_tampered_baseline_fails(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        argv = [
            "certify", "--n", "3", "--specs", "trivial@mp-cr",
            "--ks", "3", "--ts", "0", "--quiet",
        ]
        assert main(argv + ["--write-baseline", str(baseline)]) == 0
        data = json.loads(baseline.read_text())
        key = "trivial@mp-cr:k=3:t=0"
        data["points"][key]["states"] = 1  # pretend it used to be cheaper
        baseline.write_text(json.dumps(data))
        assert main(argv + ["--check-baseline", str(baseline)]) == 1
        assert "regressed" in capsys.readouterr().out
