"""Unit tests for the cross-worker shared visited stores.

The shared frontier's soundness rests on store-level contracts that are
cheapest to pin here, without spawning workers:

* The lock-free digest table is probe-and-insert with "0 means empty";
  a zero digest is remapped, a full probe window degrades to a miss
  (costing re-exploration, never a false hit).
* The hybrid store consults the local Godefroid store first, so a lone
  worker behaves exactly like the serial store; the cross-worker table
  only converts *local misses* into hits when another store recorded
  the identical (fingerprint, sleep) pair.
* The sqlite pair table is idempotent, persistent across reconnects,
  and maps unsigned 64-bit digests into sqlite's signed INTEGER and
  back without collisions.
"""

from collections import Counter

import pytest

from repro.harness.visited import (
    EXPAND_ALL,
    DiskBackedStore,
    DiskPairTable,
    ExactStore,
    NO_SLEEP,
    SharedTables,
    SharedVisitedStore,
    VisitedSpec,
    _signed,
    _table_probe,
    make_shared_store,
    make_shared_tables,
)

FP = ("state", 1, ("a", "b"))
OTHER = ("state", 2, ("c",))
SIG_X = (1, 0, 1, ("m",))


def _sleep(*sigs) -> Counter:
    return Counter({sig: 1 for sig in sigs})


class TestTableProbe:
    def test_insert_then_hit(self):
        tables = SharedTables(slots=64)
        assert _table_probe(tables.pairs, 12345) is False
        assert _table_probe(tables.pairs, 12345) is True

    def test_zero_digest_remapped(self):
        tables = SharedTables(slots=64)
        assert _table_probe(tables.pairs, 0) is False
        assert _table_probe(tables.pairs, 0) is True
        # the remap target is digest 1, so they share a slot value
        assert _table_probe(tables.pairs, 1) is True

    def test_no_insert_mode_leaves_table_unchanged(self):
        tables = SharedTables(slots=64)
        assert _table_probe(tables.pairs, 777, insert=False) is False
        assert _table_probe(tables.pairs, 777) is False  # still absent

    def test_full_table_degrades_to_miss(self):
        tables = SharedTables(slots=4)
        for digest in (1, 2, 3, 4):
            _table_probe(tables.pairs, digest)
        # every slot taken by a different digest: probe terminates and
        # reports a miss (sound: the caller just re-explores)
        assert _table_probe(tables.pairs, 999) is False

    def test_collision_distinct_digests_do_not_alias(self):
        tables = SharedTables(slots=64)
        a, b = 7, 7 + 64  # same home slot
        assert _table_probe(tables.pairs, a) is False
        assert _table_probe(tables.pairs, b) is False
        assert _table_probe(tables.pairs, a) is True
        assert _table_probe(tables.pairs, b) is True


class TestSharedVisitedStore:
    def _pair(self):
        spec = VisitedSpec(kind="exact")
        tables = make_shared_tables(spec)
        return (
            make_shared_store(spec, tables),
            make_shared_store(spec, tables),
        )

    def test_lone_store_matches_serial_semantics(self):
        store, _ = self._pair()
        plain = ExactStore()
        assert store.probe(FP, _sleep(SIG_X)) is plain.probe(FP, _sleep(SIG_X))
        assert store.probe(FP, _sleep(SIG_X)) is plain.probe(FP, _sleep(SIG_X))
        assert store.shared_hits == 0

    def test_cross_store_pair_hit_cuts_subtree(self):
        a, b = self._pair()
        assert a.probe(FP, _sleep(SIG_X)) is EXPAND_ALL
        # b never saw FP locally, but a recorded the identical pair
        assert b.probe(FP, _sleep(SIG_X)) is None
        assert b.shared_hits == 1
        assert b.hits == 1

    def test_different_sleep_is_not_a_shared_hit(self):
        a, b = self._pair()
        assert a.probe(FP, NO_SLEEP) is EXPAND_ALL
        # a different sleep set digests differently: b must re-expand,
        # and the bare-fingerprint table counts the duplicate work
        assert b.probe(FP, _sleep(SIG_X)) is EXPAND_ALL
        assert b.shared_hits == 0
        assert b.reexplored == 1

    def test_set_covered_publishes_full_coverage(self):
        a, b = self._pair()
        a.probe(FP, NO_SLEEP)
        a.set_covered(FP)
        assert b.probe(FP, NO_SLEEP) is None

    def test_fill_stats_reports_shared_counters(self):
        from repro.harness.exhaustive import ExplorationStats

        a, b = self._pair()
        a.probe(FP, _sleep(SIG_X))
        b.probe(FP, _sleep(SIG_X))
        b.probe(OTHER, _sleep(SIG_X))
        stats = ExplorationStats()
        b.fill_stats(stats)
        assert stats.shared_store is True
        assert stats.shared_hits == 1


class TestDiskPairTable:
    def test_idempotent_and_persistent(self, tmp_path):
        path = str(tmp_path / "visited.sqlite")
        table = DiskPairTable(path)
        assert table.seen_pair(42) is False
        assert table.seen_pair(42) is True  # buffered, own-cache visible
        table.flush()
        fresh = DiskPairTable(path)
        assert fresh.seen_pair(42) is True
        assert fresh.seen_fp(42) is False  # tables are independent

    def test_unsigned_digests_round_trip(self, tmp_path):
        path = str(tmp_path / "visited.sqlite")
        table = DiskPairTable(path)
        high = (1 << 64) - 3  # would overflow sqlite INTEGER unsigned
        low = 3
        assert _signed(high) < 0 < _signed(low)
        assert table.seen_fp(high) is False
        table.flush()
        fresh = DiskPairTable(path)
        assert fresh.seen_fp(high) is True
        assert fresh.seen_fp(low) is False

    def test_disk_backed_store_shares_by_path(self, tmp_path):
        path = str(tmp_path / "visited.sqlite")
        a = DiskBackedStore(path)
        b = DiskBackedStore(path)
        assert a.probe(FP, _sleep(SIG_X)) is EXPAND_ALL
        a.flush()
        assert b.probe(FP, _sleep(SIG_X)) is None
        assert b.shared_hits == 1

    def test_unflushed_rows_invisible_to_others(self, tmp_path):
        path = str(tmp_path / "visited.sqlite")
        a = DiskBackedStore(path)
        b = DiskBackedStore(path)
        a.probe(FP, _sleep(SIG_X))  # buffered only
        assert b.probe(FP, _sleep(SIG_X)) is EXPAND_ALL  # duplicate work
        b.flush()


class TestSpecPlumbing:
    def test_disk_spec_requires_path(self):
        with pytest.raises(ValueError):
            VisitedSpec(kind="disk").build()

    def test_make_shared_tables_skips_disk(self):
        assert make_shared_tables(VisitedSpec(kind="disk")) is None

    def test_make_shared_store_kinds(self, tmp_path):
        disk = VisitedSpec(kind="disk", disk_path=str(tmp_path / "v.sqlite"))
        assert make_shared_store(disk, None).kind == "disk"
        for kind in ("exact", "compact"):
            spec = VisitedSpec(kind=kind)
            store = make_shared_store(spec, make_shared_tables(spec))
            assert isinstance(store, SharedVisitedStore)
            assert store.kind == kind
            assert store.shared and store.lossy
        bit = VisitedSpec(kind="bitstate", bitstate_bits=1 << 10)
        store = make_shared_store(bit, make_shared_tables(bit))
        assert store.kind == "bitstate" and store.shared
