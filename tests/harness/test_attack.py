"""Tests for the adversarial attack search."""

from repro.harness.attack import search_worst_run
from repro.protocols.base import get_spec


class TestInsideRegions:
    """Inside a protocol's claimed region the search must come up empty --
    these double as high-intensity falsification tests for the protocols."""

    def test_protocol_a_mp_cr(self):
        result = search_worst_run(
            get_spec("protocol-a@mp-cr"), 6, 3, 3, attempts=80, seed=0
        )
        assert result.violations_found == 0, result.summary()
        assert result.best_distinct <= 3

    def test_protocol_b_mp_cr(self):
        result = search_worst_run(
            get_spec("protocol-b@mp-cr"), 9, 4, 3, attempts=80, seed=1
        )
        assert result.violations_found == 0, result.summary()

    def test_protocol_c_mp_byz(self):
        result = search_worst_run(
            get_spec("protocol-c@mp-byz"), 9, 4, 2, attempts=40, seed=2
        )
        assert result.violations_found == 0, result.summary()

    def test_protocol_d_mp_byz(self):
        result = search_worst_run(
            get_spec("protocol-d@mp-byz"), 7, 3, 2, attempts=40, seed=3
        )
        assert result.violations_found == 0, result.summary()

    def test_protocol_e_sm_byz(self):
        result = search_worst_run(
            get_spec("protocol-e@sm-byz"), 6, 2, 2, attempts=60, seed=4
        )
        assert result.violations_found == 0, result.summary()

    def test_protocol_f_sm_cr(self):
        result = search_worst_run(
            get_spec("protocol-f@sm-cr"), 7, 5, 3, attempts=60, seed=5
        )
        assert result.violations_found == 0, result.summary()


class TestOutsideRegions:
    def test_protocol_b_breaks_past_lemma_3_6(self):
        # t >= kn/(2k+1): n=9, k=2 -> t >= 4
        result = search_worst_run(
            get_spec("protocol-b@mp-cr"), 9, 2, 4,
            attempts=300, seed=1, stop_on_violation=True,
        )
        assert result.violations_found > 0
        assert result.first_violation is not None

    def test_protocol_a_breaks_past_lemma_3_3(self):
        # n=6, k=2: t=3 is the paper's isolated OPEN point (k | n); the
        # provable impossibility starts at t >= (n+1)/2 = 4 (Lemma 3.3).
        result = search_worst_run(
            get_spec("protocol-a@mp-cr"), 6, 2, 4,
            attempts=600, seed=7, stop_on_violation=True,
        )
        assert result.broke_agreement or result.violations_found > 0


class TestResultShape:
    def test_summary_text(self):
        result = search_worst_run(
            get_spec("chaudhuri@mp-cr"), 5, 3, 2, attempts=10, seed=0
        )
        text = result.summary()
        assert "chaudhuri@mp-cr" in text
        assert "10 attempts" in text

    def test_best_report_retained(self):
        result = search_worst_run(
            get_spec("chaudhuri@mp-cr"), 5, 3, 2, attempts=10, seed=0
        )
        assert result.best_report is not None
        assert result.best_distinct >= 1
