"""Equivalence of the exploration modes.

The fast-fork explorer ships three mechanisms that must never change
*what* is found, only how fast: snapshot/restore forking (vs the legacy
deepcopy engine), sleep-set partial-order reduction (vs the full DFS),
and the parallel frontier search (vs serial).  These tests pin the
equivalences on instances small enough to exhaust, including a known-
violating ablation -- the reductions must find the same counterexamples,
not just the same clean bills of health.
"""

import pytest

from repro.core.validity import RV2, SV2
from repro.failures.crash import CrashPlan, CrashPoint, CrashWhenOthersDecide
from repro.harness.exhaustive import (
    SpecFactory,
    crash_patterns,
    explore_mp,
    explore_sm,
)
from repro.protocols.ablations import ProtocolBStrictQuorum
from repro.protocols.protocol_a import ProtocolA


def _explore_a(n=3, inputs=("v", "v", "w"), **kwargs):
    kwargs.setdefault("validity", RV2)
    return explore_mp(
        lambda: [ProtocolA() for _ in range(n)],
        list(inputs), k=2, t=1, **kwargs,
    )


def _same_findings(a, b):
    assert a.decision_sets == b.decision_sets
    assert a.max_distinct_decisions == b.max_distinct_decisions
    assert a.violation_kinds() == b.violation_kinds()
    assert a.all_ok == b.all_ok


class TestPorVsFullDfs:
    def test_failure_free_instance(self):
        full = _explore_a(por=False)
        por = _explore_a(por=True)
        assert full.exhausted and por.exhausted
        _same_findings(full, por)
        assert por.states <= full.states
        assert por.runs <= full.runs
        assert por.sleep_pruned > 0

    def test_every_crash_pattern(self):
        for plan in crash_patterns(3, 1, max_sends=2):
            full = _explore_a(crash_adversary=plan, por=False)
            por = _explore_a(crash_adversary=plan, por=True)
            assert full.exhausted and por.exhausted, plan
            _same_findings(full, por)
            assert por.states <= full.states, plan

    def test_violating_ablation_found_identically(self):
        """POR must preserve counterexamples, not just clean results.

        The strict-quorum ablation violates SV2 under an early crash
        (the design rationale of PROTOCOL B made executable); both
        modes must report the same violation kinds and decision sets.
        """
        def run(por):
            return explore_mp(
                lambda: [ProtocolBStrictQuorum() for _ in range(3)],
                ["w", "v", "v"], k=2, t=1, validity=SV2,
                crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
                por=por,
            )

        full = run(por=False)
        por = run(por=True)
        assert full.exhausted and por.exhausted
        assert not full.all_ok and not por.all_ok
        _same_findings(full, por)
        assert por.states <= full.states

    def test_dynamic_adversary_disables_por(self):
        """Reactive crash rules depend on global state, so independence
        does not hold; POR must silently fall back to full DFS."""
        adversary = CrashWhenOthersDecide([0], [1, 2])
        por = _explore_a(crash_adversary=adversary, por=True)
        full = _explore_a(crash_adversary=adversary, por=False)
        assert por.sleep_pruned == 0
        assert por.states == full.states
        assert por.runs == full.runs
        _same_findings(full, por)


class TestSnapshotVsDeepcopyEngine:
    def test_engines_agree_exactly(self):
        """Same fingerprints, same DFS: state and run counts match
        exactly, not just the verdicts."""
        snap = _explore_a(por=False, engine="snapshot")
        deep = _explore_a(por=False, engine="deepcopy")
        assert snap.exhausted and deep.exhausted
        assert snap.states == deep.states
        assert snap.runs == deep.runs
        _same_findings(snap, deep)

    def test_engines_agree_under_crash_plan(self):
        plan = CrashPlan({0: CrashPoint(after_sends=1)})
        snap = _explore_a(crash_adversary=plan, por=False, engine="snapshot")
        deep = _explore_a(crash_adversary=plan, por=False, engine="deepcopy")
        assert snap.states == deep.states
        assert snap.runs == deep.runs
        _same_findings(snap, deep)

    def test_deepcopy_engine_rejects_jobs(self):
        with pytest.raises(ValueError):
            _explore_a(engine="deepcopy", jobs=2)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            _explore_a(engine="telepathy")


class TestSerialVsParallelFrontier:
    """``--jobs N`` output must be bit-identical for every worker count:
    the frontier is built breadth-first to a jobs-independent width and
    merged in frontier order, so ``jobs=1`` (the serial execution of
    the same decomposition) is the reference.  Against the plain serial
    DFS (``jobs=None``, one shared visited store) the frontier explores
    more states -- worker-private stores re-cover subtree overlaps --
    so there the guarantee is identical *findings*, not counters."""

    def test_mp_bit_identical_across_worker_counts(self):
        factory = SpecFactory("protocol-a@mp-cr", n=3, k=2, t=1)
        one = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2, jobs=1,
        )
        fanned = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2, jobs=3,
        )
        assert one == fanned  # every field, including violation paths

    def test_mp_bit_identical_under_crash_plan(self):
        factory = SpecFactory("protocol-a@mp-cr", n=3, k=2, t=1)
        plan = CrashPlan({0: CrashPoint(after_sends=1)})
        one = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2,
            crash_adversary=plan, jobs=1,
        )
        fanned = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2,
            crash_adversary=plan, jobs=2,
        )
        assert one == fanned

    def test_mp_frontier_agrees_with_serial_dfs(self):
        factory = SpecFactory("protocol-a@mp-cr", n=3, k=2, t=1)
        serial = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2, jobs=None,
        )
        fanned = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2, jobs=3,
        )
        assert serial.exhausted and fanned.exhausted
        _same_findings(serial, fanned)

    def test_sm_bit_identical_across_worker_counts(self):
        factory = SpecFactory("protocol-e@sm-cr", n=2, k=2, t=2)
        one = explore_sm(
            factory, ["a", "b"], k=2, t=2, validity=RV2, jobs=1,
        )
        fanned = explore_sm(
            factory, ["a", "b"], k=2, t=2, validity=RV2, jobs=3,
        )
        assert one == fanned

    def test_sm_frontier_agrees_with_serial_dfs(self):
        factory = SpecFactory("protocol-e@sm-cr", n=2, k=2, t=2)
        serial = explore_sm(
            factory, ["a", "b"], k=2, t=2, validity=RV2, jobs=None,
        )
        fanned = explore_sm(
            factory, ["a", "b"], k=2, t=2, validity=RV2, jobs=2,
        )
        assert serial.exhausted and fanned.exhausted
        _same_findings(serial, fanned)


class TestSymmetryVisitedMatrix:
    """Symmetry reduction x visited store x worker count.

    Every combination must find exactly what the full DFS finds; the
    lossy stores may change *how much* is explored (bitstate false
    positives cut branches sleep-soundly, worker-private stores re-cover
    overlaps) but never the findings, and ``--jobs`` stays bit-identical
    for every store/symmetry selection.
    """

    STORES = ("exact", "compact", "bitstate")

    def test_clean_instance_matrix(self):
        factory = SpecFactory("protocol-a@mp-cr", n=3, k=2, t=1)
        full = explore_mp(
            factory, ["v", "v", "w"], k=2, t=1, validity=RV2, por=False,
        )
        for visited in self.STORES:
            for symmetry in (False, True):
                run = explore_mp(
                    factory, ["v", "v", "w"], k=2, t=1, validity=RV2,
                    visited=visited, symmetry=symmetry,
                )
                assert run.exhausted, (visited, symmetry)
                _same_findings(full, run)
                assert run.stats.visited_store == visited
                if symmetry:
                    assert run.stats.symmetry, visited
                    assert run.states < full.states

    def test_violating_ablation_matrix(self):
        """The counterexample must survive every store, the symmetry
        quotient, and both engines -- same violation kinds, and the same
        first violating schedule wherever a schedule is reported."""
        def run(**kwargs):
            return explore_mp(
                lambda: [ProtocolBStrictQuorum() for _ in range(3)],
                ["w", "v", "v"], k=2, t=1, validity=SV2,
                crash_adversary=CrashPlan({0: CrashPoint(after_steps=1)}),
                **kwargs,
            )

        full = run(por=False)
        assert not full.all_ok
        for visited in self.STORES:
            for symmetry in (False, True):
                got = run(visited=visited, symmetry=symmetry)
                assert got.exhausted, (visited, symmetry)
                _same_findings(full, got)
        deep = run(engine="deepcopy", symmetry=True)
        _same_findings(full, deep)
        assert not deep.stats.symmetry  # the full-DFS baseline opts out

    def test_jobs_bit_identical_for_every_store_and_symmetry(self):
        factory = SpecFactory("protocol-a@mp-cr", n=3, k=2, t=1)
        for visited in self.STORES:
            for symmetry in (False, True):
                one = explore_mp(
                    factory, ["v", "v", "w"], k=2, t=1, validity=RV2,
                    visited=visited, symmetry=symmetry, jobs=1,
                )
                fanned = explore_mp(
                    factory, ["v", "v", "w"], k=2, t=1, validity=RV2,
                    visited=visited, symmetry=symmetry, jobs=3,
                )
                assert one == fanned, (visited, symmetry)

    def test_sm_jobs_bit_identical_under_symmetry(self):
        factory = SpecFactory("protocol-e@sm-cr", n=3, k=2, t=0)
        one = explore_sm(
            factory, ["a", "a", "b"], k=2, t=0, validity=RV2,
            symmetry=True, jobs=1,
        )
        fanned = explore_sm(
            factory, ["a", "a", "b"], k=2, t=0, validity=RV2,
            symmetry=True, jobs=3,
        )
        assert one == fanned
        assert one.stats.symmetry

    def test_n4_symmetry_agrees_and_reduces(self):
        factory = SpecFactory("protocol-a@mp-cr", n=4, k=2, t=1)
        inputs = ["v", "v", "v", "w"]
        por = explore_mp(factory, inputs, k=2, t=1, validity=RV2)
        sym = explore_mp(
            factory, inputs, k=2, t=1, validity=RV2, symmetry=True,
        )
        assert por.exhausted and sym.exhausted
        _same_findings(por, sym)
        assert sym.stats.symmetry and sym.stats.group_size == 6
        assert sym.states < por.states
