"""Property tests for process-permutation symmetry reduction.

The soundness claim of :mod:`repro.harness.symmetry` is that renaming
interchangeable processes is an automorphism of the transition system:
the renamed image of any reachable execution is itself reachable, and
both land on the same canonical fingerprint.  These tests *execute*
that claim with a lockstep permutation fuzz: two identical kernels, one
driven along a random schedule and one along its renamed image,
comparing canonical fingerprints as they go.  A wrong declaration (a
state field or payload tag whose pid mentions are renamed unfaithfully)
makes the fingerprints diverge within a few steps.

Message passing is renaming-equivariant at *every* step, so the MP fuzz
compares after each delivery.  Shared memory is subtler: a scan reads
register owner ``j`` at scan position ``j``, so the renamed schedule
observes owner ``perm^-1(j)``'s register at a different global time
than the original run did -- with writes interleaving a scan the two
logs genuinely differ, and only the reachable *sets* of outcomes
coincide (which the end-to-end differential tests pin).  The exact
stepwise invariant holds when scans execute atomically, so the SM fuzz
schedules at block granularity -- each chosen process runs to its next
cycle boundary before another is scheduled -- and compares canonical
fingerprints at the boundaries, where every permutation in the group is
feasible.
"""

import random

import pytest

from repro.core.validity import by_code
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.exhaustive import (
    SpecFactory,
    _fresh_mp_kernel,
    _fresh_sm_kernel,
    _mp_counters_matter,
    explore_mp,
    explore_sm,
)
from repro.harness.symmetry import (
    mp_symmetry_context,
    sm_symmetry_context,
    symmetry_group,
)
from repro.protocols.base import all_specs, get_spec

N = 3
INPUTS = ["v", "v", "w"]
#: Crash plan on the odd-input process: pids 0 and 1 stay symmetric.
SYMMETRIC_PLAN = CrashPlan({2: CrashPoint(after_steps=1)})


def _grid_point(spec):
    """First (k, t) of the n=3 grid the spec claims solvable."""
    for k in range(1, N + 1):
        for t in range(N):
            if spec.solvable(N, k, t):
                return k, t
    pytest.skip(f"{spec.name}: no solvable point at n={N}")


def _mp_specs():
    return [
        s for s in all_specs()
        if not s.is_shared_memory and not s.name.startswith("sim-")
    ]


def _sm_specs():
    return [
        s for s in all_specs()
        if s.is_shared_memory and not s.name.startswith("sim-")
    ]


def _lockstep_mp_fuzz(spec, inputs, t, plan, seed, rounds=3):
    """Drive a schedule and its renamed image; fingerprints must agree.

    Kernel ``A`` executes a uniformly random schedule.  Kernel ``B``
    starts from the *same* instance (the permutation preserves inputs,
    crash points, and roles, so the renamed instance is this instance)
    and executes the image of ``A``'s schedule under a random
    non-identity group element: each delivered event is matched by its
    renamed structural signature.  After every step the canonical
    fingerprints must coincide -- that is the invariant the explorer's
    visited store keys on.
    """
    k, _ = _grid_point(spec)
    factory = SpecFactory(spec.name, N, k, t)
    rng = random.Random(seed)
    include_counters = _mp_counters_matter(plan)
    for _ in range(rounds):
        kernel_a = _fresh_mp_kernel(factory, inputs, t, plan)
        ctx, reason = mp_symmetry_context(
            kernel_a._processes, inputs, t, plan
        )
        if ctx is None and "trivial" in reason:
            # Role/input structure leaves no interchangeable pair at
            # this grid point (e.g. protocol-d's broadcaster role plus
            # distinct inputs); uniform inputs restore a real group.
            inputs = ["v"] * N
            kernel_a = _fresh_mp_kernel(factory, inputs, t, plan)
            ctx, reason = mp_symmetry_context(
                kernel_a._processes, inputs, t, plan
            )
        kernel_b = _fresh_mp_kernel(factory, inputs, t, plan)
        assert ctx is not None, f"{spec.name}: {reason}"
        perms = ctx._perms
        pi = perms[rng.randrange(1, len(perms))]
        identity = perms[0]
        steps = 0
        while kernel_a._pending and steps < 60:
            fp_a = ctx.canonical(kernel_a, include_counters)[0]
            fp_b = ctx.canonical(kernel_b, include_counters)[0]
            assert fp_a == fp_b, f"{spec.name}: diverged after {steps} steps"
            seq_a = rng.choice(sorted(kernel_a._pending))
            event_a = kernel_a._pending[seq_a]
            _, sigs_a = ctx._renamed_fingerprint(
                kernel_a, include_counters, pi
            )
            want = sigs_a[id(event_a)]
            _, sigs_b = ctx._renamed_fingerprint(
                kernel_b, include_counters, identity
            )
            matches = [
                seq for seq in sorted(kernel_b._pending)
                if sigs_b[id(kernel_b._pending[seq])] == want
            ]
            assert matches, (
                f"{spec.name}: renamed event {want} missing from the "
                f"renamed kernel -- renaming is not an automorphism"
            )
            kernel_a.step(seq_a)
            kernel_b.step(matches[0])
            steps += 1
        assert (
            ctx.canonical(kernel_a, include_counters)[0]
            == ctx.canonical(kernel_b, include_counters)[0]
        )


class TestMPCanonicalInvariance:
    @pytest.mark.parametrize(
        "spec", _mp_specs(), ids=lambda s: s.name
    )
    def test_failure_free(self, spec):
        _lockstep_mp_fuzz(spec, INPUTS, t=0, plan=None, seed=1)

    @pytest.mark.parametrize(
        "spec", _mp_specs(), ids=lambda s: s.name
    )
    def test_under_symmetric_crash_plan(self, spec):
        for k in range(1, N + 1):
            if spec.solvable(N, k, 1):
                break
        else:
            pytest.skip(f"{spec.name}: no t=1 point at n={N}")
        _lockstep_mp_fuzz(spec, INPUTS, t=1, plan=SYMMETRIC_PLAN, seed=2)

    def test_uniform_inputs_full_group(self):
        spec = get_spec("protocol-b@mp-cr")
        _lockstep_mp_fuzz(spec, ["v"] * N, t=0, plan=None, seed=3)


def _step_block(kernel, ctx, pid):
    """Step ``pid`` until its in-progress scan (if any) completes."""
    kernel.step_pid(pid)
    while (
        pid in kernel.runnable_pids()
        and ctx._parse_log(kernel._states[pid])[2]
    ):
        kernel.step_pid(pid)


class TestSMCanonicalInvariance:
    @pytest.mark.parametrize(
        "spec", _sm_specs(), ids=lambda s: s.name
    )
    def test_pi_image_block_schedule(self, spec):
        """A block-atomic schedule and its pid-renamed image reach equal
        canonical fingerprints at every cycle boundary."""
        k, t = _grid_point(spec)
        factory = SpecFactory(spec.name, N, k, t)
        rng = random.Random(11)
        for _ in range(3):
            kernel_a = _fresh_sm_kernel(factory, INPUTS, t, None, 5000)
            kernel_b = _fresh_sm_kernel(factory, INPUTS, t, None, 5000)
            ctx, reason = sm_symmetry_context(
                kernel_a._programs, INPUTS, t, None
            )
            assert ctx is not None, f"{spec.name}: {reason}"
            pi = ctx._perms[rng.randrange(1, len(ctx._perms))]
            blocks = 0
            while kernel_a.runnable_pids() and blocks < 30:
                pid = rng.choice(sorted(kernel_a.runnable_pids()))
                assert pi[pid] in kernel_b.runnable_pids(), (
                    f"{spec.name}: renamed pid not runnable -- renaming "
                    f"is not an automorphism"
                )
                _step_block(kernel_a, ctx, pid)
                _step_block(kernel_b, ctx, pi[pid])
                fp_a = ctx.canonical(kernel_a)[0]
                fp_b = ctx.canonical(kernel_b)[0]
                assert fp_a == fp_b, (
                    f"{spec.name}: diverged after {blocks} blocks"
                )
                blocks += 1
            assert blocks > 0

    @pytest.mark.parametrize(
        "spec", _sm_specs(), ids=lambda s: s.name
    )
    def test_sym_explore_matches_full_dfs(self, spec):
        """End to end on the SM kernel: symmetry+POR and full DFS agree
        on findings for interleavings the block fuzz cannot cover (scans
        split by concurrent writes)."""
        if spec.name.startswith("protocol-f"):
            pytest.skip(
                "protocol-f's n=3 space is not exhaustible in a test "
                "budget; its canonicalization is covered by the block "
                "fuzz above"
            )
        k, t = _grid_point(spec)
        factory = SpecFactory(spec.name, N, k, t)
        validity = by_code("SV2")
        full = explore_sm(
            factory, INPUTS, k, t, validity,
        )
        sym = explore_sm(
            factory, INPUTS, k, t, validity, symmetry=True,
        )
        assert full.exhausted and sym.exhausted
        assert sym.violation_kinds() == full.violation_kinds()
        assert sym.decision_sets == full.decision_sets
        if sym.stats.symmetry:
            assert sym.states < full.states

    def test_sim_specs_refuse_gracefully(self):
        """Simulation wrappers carry per-pid closure state the renamer
        has no declaration for; the context must refuse with the
        sim-specific reason (surfaced by certification reports), not a
        generic "heterogeneous programs"."""
        for name in ("sim-chaudhuri@sm-cr", "sim-protocol-b@sm-cr"):
            spec = get_spec(name)
            factory = SpecFactory(name, N, 2, 1)
            kernel = _fresh_sm_kernel(factory, INPUTS, 1, None, 5000)
            ctx, reason = sm_symmetry_context(
                kernel._programs, INPUTS, 1, None
            )
            assert ctx is None
            assert "simulation wrapper" in reason

    def test_non_sim_closure_programs_get_closure_reason(self):
        """Distinct per-pid closures that are not the simulation wrapper
        still refuse, naming the closure rather than the sim gap."""
        def make():
            state = []

            def program(ctx):
                state.append(ctx)
                yield

            return program

        programs = [make(), make(), make()]
        ctx, reason = sm_symmetry_context(programs, ["v", "v", "w"], 1, None)
        assert ctx is None
        assert "per-process closures" in reason
        assert "simulation wrapper" not in reason


class TestSymmetryGroup:
    def test_identity_first(self):
        perms = symmetry_group(["v", "v", "w"])
        assert perms[0] == (0, 1, 2)
        assert set(perms) == {(0, 1, 2), (1, 0, 2)}

    def test_uniform_keys_full_symmetric_group(self):
        assert len(symmetry_group(["v"] * 4)) == 24

    def test_distinct_keys_trivial_group(self):
        assert symmetry_group(["a", "b", "c"]) == [(0, 1, 2)]

    def test_product_of_classes(self):
        perms = symmetry_group(["v", "v", "w", "w"])
        assert len(perms) == 4


class TestAdversaryGating:
    def test_asymmetric_crash_plan_trivializes_group(self):
        """A crash point on one of the interchangeable processes breaks
        the symmetry; the context must refuse rather than unsoundly
        identify a crashing process with a correct one."""
        spec = get_spec("protocol-b@mp-cr")
        factory = SpecFactory(spec.name, N, 2, 1)
        plan = CrashPlan({0: CrashPoint(after_steps=1)})
        kernel = _fresh_mp_kernel(factory, INPUTS, 1, plan)
        ctx, reason = mp_symmetry_context(
            kernel._processes, INPUTS, 1, plan
        )
        assert ctx is None
        assert "trivial" in reason

    def test_matching_crash_points_keep_symmetry(self):
        """Interchangeable processes crashing at the *same* point stay
        interchangeable."""
        spec = get_spec("protocol-b@mp-cr")
        factory = SpecFactory(spec.name, N, 2, 2)
        plan = CrashPlan({
            0: CrashPoint(after_steps=1),
            1: CrashPoint(after_steps=1),
        })
        kernel = _fresh_mp_kernel(factory, INPUTS, 2, plan)
        ctx, reason = mp_symmetry_context(
            kernel._processes, INPUTS, 2, plan
        )
        assert ctx is not None, reason
        assert ctx.group_size == 2

    def test_symmetric_explore_matches_full_dfs_under_plans(self):
        """End to end: symmetry+POR vs full DFS, same findings, for a
        spread of crash plans at n=3."""
        factory = SpecFactory("protocol-a@mp-cr", N, 2, 1)
        validity = by_code("RV2")
        for plan in (
            None,
            SYMMETRIC_PLAN,
            CrashPlan({2: CrashPoint(after_sends=1)}),
        ):
            full = explore_mp(
                factory, INPUTS, 2, 1, validity,
                crash_adversary=plan, por=False,
            )
            sym = explore_mp(
                factory, INPUTS, 2, 1, validity,
                crash_adversary=plan, symmetry=True,
            )
            assert full.exhausted and sym.exhausted
            assert sym.stats.symmetry, plan
            assert sym.violation_kinds() == full.violation_kinds()
            assert sym.decision_sets == full.decision_sets
            assert sym.states < full.states, plan
