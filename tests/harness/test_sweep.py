"""Tests for the Monte-Carlo sweep engine."""

from repro.harness.inputs import INPUT_PATTERNS, make_inputs
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import get_spec

import random

import pytest


class TestMakeInputs:
    def test_patterns_cover_all_names(self):
        rng = random.Random(0)
        for pattern in INPUT_PATTERNS:
            inputs = make_inputs(pattern, 6, rng, faulty=[1])
            assert len(inputs) == 6

    def test_distinct(self):
        inputs = make_inputs("distinct", 5, random.Random(0))
        assert len(set(inputs)) == 5

    def test_unanimous(self):
        inputs = make_inputs("unanimous", 5, random.Random(0))
        assert len(set(inputs)) == 1

    def test_unanimous_correct_diverges_only_on_faulty(self):
        inputs = make_inputs("unanimous-correct", 6, random.Random(0),
                             faulty=[2, 4])
        correct_values = {v for i, v in enumerate(inputs) if i not in (2, 4)}
        assert len(correct_values) == 1
        assert inputs[2] != inputs[0]

    def test_two_valued(self):
        inputs = make_inputs("two-valued", 20, random.Random(1))
        assert set(inputs) <= {"alpha", "beta"}

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            make_inputs("nope", 3, random.Random(0))


class TestSweep:
    def test_clean_inside_region_mp_crash(self):
        spec = get_spec("protocol-a@mp-cr")
        stats = sweep_spec(spec, 6, 3, 3, SweepConfig(runs=15, seed=2))
        assert stats.clean, stats.violations
        assert stats.runs == 15
        assert stats.max_distinct_decisions <= 3

    def test_clean_inside_region_sm_byzantine(self):
        spec = get_spec("protocol-f@sm-byz")
        stats = sweep_spec(spec, 6, 4, 2, SweepConfig(runs=15, seed=2))
        assert stats.clean, stats.violations

    def test_reproducible(self):
        spec = get_spec("protocol-b@mp-cr")
        a = sweep_spec(spec, 7, 3, 2, SweepConfig(runs=10, seed=5))
        b = sweep_spec(spec, 7, 3, 2, SweepConfig(runs=10, seed=5))
        assert a.decisions_histogram == b.decisions_histogram

    def test_histogram_counts_runs(self):
        spec = get_spec("chaudhuri@mp-cr")
        stats = sweep_spec(spec, 5, 3, 2, SweepConfig(runs=12, seed=1))
        assert sum(stats.decisions_histogram.values()) == 12

    def test_summary_text(self):
        spec = get_spec("chaudhuri@mp-cr")
        stats = sweep_spec(spec, 5, 3, 2, SweepConfig(runs=4, seed=1))
        text = stats.summary()
        assert "chaudhuri@mp-cr" in text and "4 runs" in text

    def test_detects_violations_outside_region(self):
        """Sanity-check the sweep machinery itself: flood-min checked
        against k=1 (consensus) with t=2 crashes must produce agreement
        violations (different processes see different minima)."""
        import dataclasses

        spec = get_spec("chaudhuri@mp-cr")
        probe = dataclasses.replace(spec, name="chaudhuri-k1-probe")
        stats = sweep_spec(
            probe, 6, 1, 2,
            SweepConfig(runs=40, seed=0, input_patterns=("distinct",)),
        )
        assert not stats.clean
        assert any("agreement" in v.conditions for v in stats.violations)


class TestSweepEngine:
    """The ``engine`` parameter: batch dispatch and scalar fallback."""

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            sweep_spec(
                get_spec("chaudhuri@mp-cr"), 5, 2, 1,
                SweepConfig(runs=2), engine="gpu",
            )

    def test_batch_engine_runs_vectorized(self):
        stats = sweep_spec(
            get_spec("chaudhuri@mp-cr"), 5, 2, 1,
            SweepConfig(runs=12, seed=4), engine="batch",
        )
        assert stats.engine == "batch"
        assert stats.runs == 12
        assert "vectorized" in stats.execution
        assert sum(stats.decisions_histogram.values()) == 12

    def test_batch_falls_back_for_shared_memory(self):
        stats = sweep_spec(
            get_spec("protocol-e@sm-cr"), 3, 3, 1,
            SweepConfig(runs=3, seed=4), engine="batch",
        )
        assert stats.engine == "scalar"
        assert "not applicable" in stats.execution
        assert "shared-memory" in stats.execution

    def test_auto_falls_back_for_byzantine_sweep(self):
        stats = sweep_spec(
            get_spec("protocol-c@mp-byz"), 6, 2, 1,
            SweepConfig(runs=2, seed=4), engine="auto",
        )
        assert stats.engine == "scalar"
        assert "Byzantine" in stats.execution

    def test_scalar_records_amortization_fallback(self):
        # jobs=2 on a tiny sweep must run serial (pool spin-up would
        # dominate) and say so in the recorded execution mode.
        stats = sweep_spec(
            get_spec("chaudhuri@mp-cr"), 5, 2, 1,
            SweepConfig(runs=4, seed=4), jobs=2,
        )
        assert stats.engine == "scalar"
        assert "amortize" in stats.execution

    def test_batch_and_scalar_agree_in_aggregate(self):
        # Not run-by-run (different adversary sampling paths) but both
        # clean inside the solvable region, same run count.
        spec = get_spec("protocol-a@mp-cr")
        config = SweepConfig(runs=24, seed=9)
        scalar = sweep_spec(spec, 6, 3, 3, config)
        batch = sweep_spec(spec, 6, 3, 3, config, engine="batch")
        assert scalar.clean and batch.clean
        assert scalar.runs == batch.runs
