"""Unit tests for the pluggable visited stores.

The explorer's correctness leans on three store-level contracts:

* Godefroid semantics (exact/compact): a probe under a superset sleep
  is a hit, a probe under an incomparable sleep re-expands exactly the
  stored-minus-probe difference and shrinks the entry to the
  intersection, and ``set_covered`` makes every future probe hit.
* Determinism: digests come from BLAKE2b over ``repr``, never Python's
  per-process-randomized ``hash``, so two independently built stores
  agree bit for bit (the parallel frontier merge relies on this).
* Bitstate lossiness is one-sided: a probe returns only hit or
  EXPAND_ALL (never a partial re-expansion), false positives are
  *recorded* in a budget, and ``set_covered`` is a no-op (a bit cannot
  represent widened coverage).
"""

from collections import Counter

import pytest

from repro.harness.visited import (
    EXPAND_ALL,
    BitstateStore,
    CompactStore,
    ExactStore,
    NO_SLEEP,
    VisitedSpec,
    make_visited_store,
)

FP = ("state", 1, ("a", "b"))
OTHER = ("state", 2, ("c",))
SIG_X = (1, 0, 1, ("m",))
SIG_Y = (1, 1, 2, ("m",))


class TestExactStore:
    def test_new_state_expands_all(self):
        store = ExactStore()
        assert store.probe(FP, NO_SLEEP) is EXPAND_ALL
        assert store.misses == 1 and store.hits == 0

    def test_superset_sleep_is_hit(self):
        store = ExactStore()
        store.probe(FP, Counter([SIG_X]))
        assert store.probe(FP, Counter([SIG_X, SIG_Y])) is None
        assert store.hits == 1

    def test_equal_sleep_is_hit(self):
        store = ExactStore()
        store.probe(FP, Counter([SIG_X]))
        assert store.probe(FP, Counter([SIG_X])) is None

    def test_partial_reexpansion_returns_difference(self):
        store = ExactStore()
        store.probe(FP, Counter([SIG_X, SIG_Y]))
        missing = store.probe(FP, Counter([SIG_Y]))
        assert missing == Counter([SIG_X])
        # The entry shrank to the intersection: a revisit under the
        # smaller sleep is now covered.
        assert store.probe(FP, Counter([SIG_Y])) is None

    def test_disjoint_sleep_shrinks_to_empty(self):
        store = ExactStore()
        store.probe(FP, Counter([SIG_X]))
        missing = store.probe(FP, Counter([SIG_Y]))
        assert missing == Counter([SIG_X])
        assert store.probe(FP, NO_SLEEP) is None

    def test_multiset_counts_respected(self):
        store = ExactStore()
        store.probe(FP, Counter({SIG_X: 2}))
        missing = store.probe(FP, Counter({SIG_X: 1}))
        assert missing == Counter({SIG_X: 1})

    def test_set_covered_makes_every_probe_hit(self):
        store = ExactStore()
        store.probe(FP, Counter([SIG_X, SIG_Y]))
        store.set_covered(FP)
        assert store.probe(FP, NO_SLEEP) is None

    def test_probe_copies_the_sleep(self):
        store = ExactStore()
        sleep = Counter([SIG_X])
        store.probe(FP, sleep)
        sleep[SIG_Y] += 1  # caller mutation must not leak into the store
        assert store.probe(FP, Counter([SIG_X])) is None

    def test_distinct_fingerprints_independent(self):
        store = ExactStore()
        store.probe(FP, NO_SLEEP)
        assert store.probe(OTHER, NO_SLEEP) is EXPAND_ALL

    def test_sig_key_is_identity(self):
        assert ExactStore().sig_key(SIG_X) == SIG_X


class TestCompactStore:
    def test_same_godefroid_semantics_on_digests(self):
        store = CompactStore()
        sleep = Counter([store.sig_key(SIG_X), store.sig_key(SIG_Y)])
        assert store.probe(FP, sleep) is EXPAND_ALL
        missing = store.probe(FP, Counter([store.sig_key(SIG_Y)]))
        assert missing == Counter([store.sig_key(SIG_X)])

    def test_digests_are_ints(self):
        store = CompactStore()
        assert isinstance(store.fingerprint_key(FP), int)
        assert isinstance(store.sig_key(SIG_X), int)

    def test_digests_deterministic_across_instances(self):
        assert (
            CompactStore().fingerprint_key(FP)
            == CompactStore().fingerprint_key(FP)
        )
        assert CompactStore().sig_key(SIG_X) == CompactStore().sig_key(SIG_X)

    def test_distinct_values_distinct_digests(self):
        store = CompactStore()
        assert store.fingerprint_key(FP) != store.fingerprint_key(OTHER)


class TestBitstateStore:
    def test_bits_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BitstateStore(bits=100)
        with pytest.raises(ValueError):
            BitstateStore(bits=0)

    def test_new_key_expands_all_and_sets_bits(self):
        store = BitstateStore(bits=1 << 10, hashes=4)
        assert store.probe(FP, NO_SLEEP) is EXPAND_ALL
        assert 1 <= store.set_bits <= 4
        assert store.saturation == store.set_bits / (1 << 10)

    def test_repeat_probe_hits_and_accrues_budget(self):
        store = BitstateStore(bits=1 << 10, hashes=4)
        store.probe(FP, NO_SLEEP)
        assert store.probe(FP, NO_SLEEP) is None
        assert store.hits == 1
        assert store.false_positive_budget == store.saturation ** 4

    def test_sleep_is_part_of_the_key(self):
        # A hit under a *different* sleep would be unsound (the cached
        # subtree may have skipped exactly the continuations the
        # revisit needs), so sleep is hashed into the bit positions.
        store = BitstateStore(bits=1 << 16, hashes=4)
        store.probe(FP, Counter([store.sig_key(SIG_X)]))
        assert store.probe(FP, NO_SLEEP) is EXPAND_ALL

    def test_never_returns_partial_reexpansion(self):
        store = BitstateStore(bits=1 << 16, hashes=4)
        for sleep in (NO_SLEEP, Counter([store.sig_key(SIG_X)])):
            result = store.probe(FP, sleep)
            assert result is EXPAND_ALL or result is None

    def test_set_covered_is_a_noop(self):
        store = BitstateStore(bits=1 << 16, hashes=4)
        store.set_covered(FP)
        assert store.set_bits == 0
        assert store.probe(FP, NO_SLEEP) is EXPAND_ALL

    def test_positions_deterministic_across_instances(self):
        a = BitstateStore(bits=1 << 12, hashes=4)
        b = BitstateStore(bits=1 << 12, hashes=4)
        for fp in (FP, OTHER, ("x", 3)):
            assert a._positions(fp, NO_SLEEP) == b._positions(fp, NO_SLEEP)

    def test_tiny_array_saturates_and_false_hits_are_budgeted(self):
        store = BitstateStore(bits=64, hashes=2)
        for i in range(200):
            store.probe(("state", i), NO_SLEEP)
        assert store.saturation > 0.5
        # With 64 bits and 200 distinct keys some probes inevitably
        # collided; the budget must reflect a non-trivial expectation.
        assert store.hits > 0
        assert store.false_positive_budget > 0

    def test_fill_stats(self):
        from repro.harness.exhaustive import ExplorationStats

        store = BitstateStore(bits=1 << 10, hashes=4)
        store.probe(FP, NO_SLEEP)
        store.probe(FP, NO_SLEEP)
        stats = ExplorationStats()
        store.fill_stats(stats)
        assert stats.bitstate_bits == 1 << 10
        assert stats.bitstate_set_bits == store.set_bits
        assert stats.bitstate_saturation == store.saturation
        assert stats.bitstate_fp_budget == store.false_positive_budget


class TestVisitedSpec:
    def test_build_each_kind(self):
        assert type(VisitedSpec("exact").build()) is ExactStore
        assert type(VisitedSpec("compact").build()) is CompactStore
        store = VisitedSpec("bitstate", bitstate_bits=1 << 12).build()
        assert type(store) is BitstateStore
        assert store.bits == 1 << 12

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            VisitedSpec("mystery").build()

    def test_make_visited_store_from_string(self):
        store, spec = make_visited_store("compact")
        assert store.kind == "compact"
        assert spec == VisitedSpec("compact")

    def test_make_visited_store_passes_spec_through(self):
        wanted = VisitedSpec("bitstate", bitstate_bits=1 << 12)
        store, spec = make_visited_store(wanted)
        assert spec is wanted
        assert store.bits == 1 << 12
