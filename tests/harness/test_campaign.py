"""Tests for persistent sweep campaigns."""

import pathlib

import pytest

from repro.harness.campaign import (
    Campaign,
    CampaignResult,
    PointRecord,
    campaign_shards,
    run_campaign,
    run_campaign_durable,
)
from repro.jobs import JobStore, RetryPolicy, StoreConflictError
from repro.models import Model


SMALL = Campaign(
    name="unit-test",
    n_values=(5,),
    points_per_spec=1,
    runs_per_point=3,
    seed=9,
    spec_names=("chaudhuri@mp-cr", "protocol-e@sm-cr"),
)


class TestRunCampaign:
    def test_runs_and_is_clean(self):
        result = run_campaign(SMALL)
        assert result.records
        assert result.clean, result.violating()
        assert result.total_runs == 3 * len(result.records)

    def test_reproducible(self):
        a = run_campaign(SMALL)
        b = run_campaign(SMALL)
        assert [r.to_json() for r in a.records] == [r.to_json() for r in b.records]

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.json"
        result = run_campaign(SMALL, result_path=path)
        loaded = CampaignResult.load(path)
        assert loaded.summary() == result.summary()
        assert [r.to_json() for r in loaded.records] == [
            r.to_json() for r in result.records
        ]

    def test_resume_skips_done_points(self, tmp_path):
        path = tmp_path / "campaign.json"
        first = run_campaign(SMALL, result_path=path)
        # resuming the identical campaign adds nothing new
        second = run_campaign(SMALL, result_path=path)
        assert len(second.records) == len(first.records)

    def test_resume_is_equivalent_to_fresh_run(self, tmp_path):
        path = tmp_path / "campaign.json"
        # run only the first spec, persist
        partial = Campaign(
            name="unit-test", n_values=(5,), points_per_spec=1,
            runs_per_point=3, seed=9, spec_names=("chaudhuri@mp-cr",),
        )
        run_campaign(partial, result_path=path)
        # resume with the full campaign: results must equal a fresh run
        resumed = run_campaign(SMALL, result_path=path)
        fresh = run_campaign(SMALL)
        assert sorted(r.key for r in resumed.records) == sorted(
            r.key for r in fresh.records
        )
        by_key_resumed = {r.key: r.to_json() for r in resumed.records}
        by_key_fresh = {r.key: r.to_json() for r in fresh.records}
        assert by_key_resumed == by_key_fresh

    def test_mismatched_result_file_rejected(self, tmp_path):
        path = tmp_path / "campaign.json"
        run_campaign(SMALL, result_path=path)
        other = Campaign(name="other", seed=9, spec_names=("chaudhuri@mp-cr",))
        with pytest.raises(ValueError):
            run_campaign(other, result_path=path)

    def test_model_filter(self):
        campaign = Campaign(
            name="mp-only", n_values=(5,), points_per_spec=1,
            runs_per_point=2, seed=3, models=(Model.MP_CR,),
        )
        result = run_campaign(campaign)
        assert result.records
        for record in result.records:
            assert record.spec.endswith("@mp-cr")


FAST = RetryPolicy(
    max_attempts=3, timeout=10.0, backoff_base=0.01, backoff_max=0.05
)


class TestCampaignJson:
    def test_roundtrip(self):
        campaign = Campaign(
            name="rt", n_values=(5, 7), points_per_spec=2,
            runs_per_point=4, seed=11,
            spec_names=("chaudhuri@mp-cr",), engine="auto",
        )
        assert Campaign.from_json(campaign.to_json()) == campaign

    def test_roundtrip_with_models(self):
        campaign = Campaign(name="rt", models=(Model.MP_CR, Model.SM_CR))
        assert Campaign.from_json(campaign.to_json()) == campaign

    def test_defaults_roundtrip(self):
        campaign = Campaign(name="plain")
        assert Campaign.from_json(campaign.to_json()) == campaign


class TestCampaignShards:
    def test_deterministic_and_unique(self):
        a = campaign_shards(SMALL)
        b = campaign_shards(SMALL)
        assert a == b
        ids = [shard_id for shard_id, _ in a]
        assert len(ids) == len(set(ids))

    def test_payload_is_self_contained(self):
        for _, payload in campaign_shards(SMALL):
            assert set(payload) >= {"spec", "n", "k", "t", "seed", "runs"}

    def test_seed_changes_shard_seeds(self):
        reseeded = Campaign(
            name="unit-test", n_values=(5,), points_per_spec=1,
            runs_per_point=3, seed=10,
            spec_names=("chaudhuri@mp-cr", "protocol-e@sm-cr"),
        )
        seeds = lambda shards: [p["seed"] for _, p in shards]
        assert seeds(campaign_shards(SMALL)) != seeds(
            campaign_shards(reseeded)
        )


class TestRunCampaignDurable:
    def test_matches_legacy_run(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            durable, report = run_campaign_durable(
                store, campaign=SMALL, jobs=2, policy=FAST
            )
        legacy = run_campaign(SMALL)
        assert [r.to_json() for r in durable.records] == [
            r.to_json() for r in legacy.records
        ]
        assert report.drained

    def test_resume_completed_run_is_noop_and_identical(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            first, _ = run_campaign_durable(
                store, campaign=SMALL, jobs=1, policy=FAST
            )
            again, report = run_campaign_durable(
                store, run_id=SMALL.name, jobs=1, policy=FAST
            )
        assert report.completed == 0
        assert [r.to_json() for r in again.records] == [
            r.to_json() for r in first.records
        ]

    def test_conflicting_campaign_same_run_id_rejected(self, tmp_path):
        other = Campaign(
            name=SMALL.name, n_values=(7,), points_per_spec=1,
            runs_per_point=3, seed=9, spec_names=("chaudhuri@mp-cr",),
        )
        with JobStore(tmp_path / "jobs.sqlite") as store:
            run_campaign_durable(store, campaign=SMALL, policy=FAST,
                                 max_shards=1)
            with pytest.raises(StoreConflictError):
                run_campaign_durable(store, campaign=other, policy=FAST)

    def test_resume_unknown_run_raises(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            with pytest.raises(KeyError):
                run_campaign_durable(store, run_id="ghost")

    def test_result_file_roundtrips_execution_metadata(self, tmp_path):
        path = tmp_path / "result.json"
        with JobStore(tmp_path / "jobs.sqlite") as store:
            result, _ = run_campaign_durable(
                store, campaign=SMALL, jobs=1, policy=FAST,
                result_path=path,
            )
        loaded = CampaignResult.load(path)
        assert loaded.execution is not None
        assert loaded.execution["run_id"] == SMALL.name
        assert [r.to_json() for r in loaded.records] == [
            r.to_json() for r in result.records
        ]


class TestPointRecord:
    def test_json_roundtrip(self):
        record = PointRecord(
            spec="x", n=5, k=2, t=1, runs=3, violations=0, max_distinct=2
        )
        assert PointRecord.from_json(record.to_json()) == record

    def test_key_format(self):
        record = PointRecord(
            spec="x", n=5, k=2, t=1, runs=3, violations=0, max_distinct=2
        )
        assert record.key == "x|n=5|k=2|t=1"
