"""Tests for persistent sweep campaigns."""

import pathlib

import pytest

from repro.harness.campaign import (
    Campaign,
    CampaignResult,
    PointRecord,
    run_campaign,
)
from repro.models import Model


SMALL = Campaign(
    name="unit-test",
    n_values=(5,),
    points_per_spec=1,
    runs_per_point=3,
    seed=9,
    spec_names=("chaudhuri@mp-cr", "protocol-e@sm-cr"),
)


class TestRunCampaign:
    def test_runs_and_is_clean(self):
        result = run_campaign(SMALL)
        assert result.records
        assert result.clean, result.violating()
        assert result.total_runs == 3 * len(result.records)

    def test_reproducible(self):
        a = run_campaign(SMALL)
        b = run_campaign(SMALL)
        assert [r.to_json() for r in a.records] == [r.to_json() for r in b.records]

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.json"
        result = run_campaign(SMALL, result_path=path)
        loaded = CampaignResult.load(path)
        assert loaded.summary() == result.summary()
        assert [r.to_json() for r in loaded.records] == [
            r.to_json() for r in result.records
        ]

    def test_resume_skips_done_points(self, tmp_path):
        path = tmp_path / "campaign.json"
        first = run_campaign(SMALL, result_path=path)
        # resuming the identical campaign adds nothing new
        second = run_campaign(SMALL, result_path=path)
        assert len(second.records) == len(first.records)

    def test_resume_is_equivalent_to_fresh_run(self, tmp_path):
        path = tmp_path / "campaign.json"
        # run only the first spec, persist
        partial = Campaign(
            name="unit-test", n_values=(5,), points_per_spec=1,
            runs_per_point=3, seed=9, spec_names=("chaudhuri@mp-cr",),
        )
        run_campaign(partial, result_path=path)
        # resume with the full campaign: results must equal a fresh run
        resumed = run_campaign(SMALL, result_path=path)
        fresh = run_campaign(SMALL)
        assert sorted(r.key for r in resumed.records) == sorted(
            r.key for r in fresh.records
        )
        by_key_resumed = {r.key: r.to_json() for r in resumed.records}
        by_key_fresh = {r.key: r.to_json() for r in fresh.records}
        assert by_key_resumed == by_key_fresh

    def test_mismatched_result_file_rejected(self, tmp_path):
        path = tmp_path / "campaign.json"
        run_campaign(SMALL, result_path=path)
        other = Campaign(name="other", seed=9, spec_names=("chaudhuri@mp-cr",))
        with pytest.raises(ValueError):
            run_campaign(other, result_path=path)

    def test_model_filter(self):
        campaign = Campaign(
            name="mp-only", n_values=(5,), points_per_spec=1,
            runs_per_point=2, seed=3, models=(Model.MP_CR,),
        )
        result = run_campaign(campaign)
        assert result.records
        for record in result.records:
            assert record.spec.endswith("@mp-cr")


class TestPointRecord:
    def test_json_roundtrip(self):
        record = PointRecord(
            spec="x", n=5, k=2, t=1, runs=3, violations=0, max_distinct=2
        )
        assert PointRecord.from_json(record.to_json()) == record

    def test_key_format(self):
        record = PointRecord(
            spec="x", n=5, k=2, t=1, runs=3, violations=0, max_distinct=2
        )
        assert record.key == "x|n=5|k=2|t=1"
