"""Tests for the experiment runner."""

import pytest

from repro.core.validity import RV1, RV2
from repro.failures.byzantine import MuteProcess
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import run_mp, run_sm, run_spec
from repro.protocols.base import get_spec
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_e import protocol_e


class TestRunMP:
    def test_report_structure(self):
        report = run_mp(
            [ChaudhuriKSet() for _ in range(4)],
            list("abcd"), k=2, t=1, validity=RV1,
        )
        assert report.ok
        assert set(report.verdicts) == {"termination", "agreement", "validity"}
        assert report.outcome.n == 4
        assert "OK" in report.summary()

    def test_violations_surface(self):
        # k = 1 (consensus) with distinct inputs under flood-min: both of
        # the first two processes may decide different minima only if the
        # schedule splits them -- force it by crashing the owner of the
        # minimum after partial broadcast.
        report = run_mp(
            [ChaudhuriKSet() for _ in range(3)],
            ["a", "b", "c"], k=1, t=1, validity=RV1,
            crash_adversary=CrashPlan({0: CrashPoint(after_sends=1)}),
        )
        # p0 sent "a" only to p0 itself; p1 and p2 decide among {b, c}
        # while... either way the report is structurally sound:
        assert set(report.verdicts) == {"termination", "agreement", "validity"}

    def test_summary_mentions_violations(self):
        report = run_mp(
            [MuteProcess() for _ in range(2)],
            ["a", "b"], k=2, t=2, validity=RV1,
            byzantine=[0, 1],
        )
        # everyone Byzantine: no correct processes; conditions hold vacuously
        assert report.ok


class TestRunSM:
    def test_basic(self):
        report = run_sm(
            [protocol_e] * 3, ["v"] * 3, k=2, t=1, validity=RV2,
        )
        assert report.ok


class TestRunSpec:
    def test_mp_spec(self):
        spec = get_spec("chaudhuri@mp-cr")
        report = run_spec(spec, 5, 3, 2, list("abcde"))
        assert report.ok

    def test_sm_spec(self):
        spec = get_spec("protocol-e@sm-cr")
        report = run_spec(spec, 4, 2, 4, ["v"] * 4)
        assert report.ok

    def test_fresh_process_per_pid(self):
        # run_spec must not share one process instance across pids
        spec = get_spec("protocol-a@mp-cr")
        report = run_spec(spec, 5, 3, 2, ["v"] * 5)
        assert report.ok
        report2 = run_spec(spec, 5, 3, 2, ["v"] * 5)
        assert report2.ok  # second run unaffected by the first

    def test_inputs_length_checked(self):
        spec = get_spec("chaudhuri@mp-cr")
        with pytest.raises(ValueError):
            run_spec(spec, 5, 3, 2, ["a"])

    def test_byzantine_on_crash_spec_rejected(self):
        spec = get_spec("chaudhuri@mp-cr")
        with pytest.raises(ValueError):
            run_spec(
                spec, 5, 3, 2, list("abcde"),
                byzantine_behaviours={0: MuteProcess()},
            )

    def test_byzantine_behaviours_installed(self):
        spec = get_spec("protocol-c@mp-byz")
        report = run_spec(
            spec, 9, 4, 2, ["v"] * 9,
            byzantine_behaviours={0: MuteProcess()},
        )
        assert report.ok
        assert 0 in report.outcome.faulty


class TestVerifyReports:
    """`verify=True` attaches the oracle stack's findings to the report."""

    def test_clean_run_has_empty_violation_list(self):
        spec = get_spec("chaudhuri@mp-cr")
        report = run_spec(spec, 5, 2, 1, list("abcde"), verify=True)
        assert report.oracle_violations == []
        assert report.ok

    def test_default_leaves_oracles_unrun(self):
        spec = get_spec("chaudhuri@mp-cr")
        report = run_spec(spec, 5, 2, 1, list("abcde"))
        assert report.oracle_violations is None
        assert report.ok  # None must not count against ok

    def test_oracle_findings_flip_ok_and_show_in_summary(self):
        # trivial protocol outside its region: everyone keeps their own
        # input, so k=1 with distinct inputs breaks agreement.
        spec = get_spec("trivial@mp-cr")
        report = run_spec(spec, 3, 1, 0, ["a", "b", "c"], verify=True)
        assert not report.ok
        fired = {v.oracle for v in report.oracle_violations}
        assert "agreement" in fired
        assert "oracles:" in report.summary()

    def test_sm_path_threads_verify(self):
        spec = get_spec("protocol-e@sm-cr")
        report = run_spec(spec, 5, 2, 1, list("abcde"), verify=True)
        assert report.oracle_violations == []
