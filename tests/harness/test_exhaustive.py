"""Tests for the exhaustive schedule explorer.

These verify protocols over *all* delivery orders of small instances --
the real universal quantifier of the paper's possibility lemmas.
"""

import pytest

from repro.core.validity import RV1, RV2, SV2
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.exhaustive import crash_patterns, explore_mp
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_b import ProtocolB


class TestProtocolAExhaustive:
    def test_all_schedules_n3_mixed_inputs(self):
        result = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "w"], k=2, t=1, validity=RV2,
        )
        assert result.exhausted
        assert result.all_ok, result.violations[:3]
        assert result.runs > 50
        assert result.max_distinct_decisions <= 2

    def test_all_schedules_n3_full_dfs_reference(self):
        # por=False is the unreduced reference: every representative
        # interleaving (modulo state dedup) is judged individually.
        result = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "w"], k=2, t=1, validity=RV2, por=False,
        )
        assert result.exhausted
        assert result.all_ok, result.violations[:3]
        assert result.runs > 100
        assert result.max_distinct_decisions <= 2

    def test_all_schedules_unanimous(self):
        result = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=2, t=1, validity=RV2,
        )
        assert result.exhausted and result.all_ok
        # unanimity: the only decision set over all runs is {v}
        assert result.decision_sets == {frozenset({"v"})}

    def test_every_crash_pattern(self):
        for plan in crash_patterns(3, 1, max_sends=3):
            result = explore_mp(
                lambda: [ProtocolA() for _ in range(3)],
                ["v", "v", "w"], k=2, t=1, validity=RV2,
                crash_adversary=plan,
            )
            assert result.exhausted
            assert result.all_ok, (plan, result.violations[:2])

    def test_frontier_is_tight_outside_region(self):
        """At t = (k-1)n/k (outside Lemma 3.7's region) some schedule
        must break PROTOCOL A -- and the explorer finds it."""
        # n=3, k=2: region is t < 1.5, so t=2 is out; n-t=1: each process
        # decides on its own value alone.
        result = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["a", "b", "c"], k=2, t=2, validity=RV2,
        )
        assert result.exhausted
        assert not result.all_ok
        assert result.max_distinct_decisions == 3


class TestChaudhuriExhaustive:
    def test_all_schedules_clean(self):
        result = explore_mp(
            lambda: [ChaudhuriKSet() for _ in range(3)],
            ["a", "b", "c"], k=2, t=1, validity=RV1,
        )
        assert result.exhausted and result.all_ok
        assert result.max_distinct_decisions <= 2  # t + 1

    def test_decision_sets_are_among_smallest_inputs(self):
        result = explore_mp(
            lambda: [ChaudhuriKSet() for _ in range(3)],
            ["a", "b", "c"], k=2, t=1, validity=RV1,
        )
        for decided in result.decision_sets:
            assert decided <= {"a", "b"}  # the t+1 smallest inputs


class TestProtocolBExhaustive:
    def test_all_schedules_clean(self):
        result = explore_mp(
            lambda: [ProtocolB() for _ in range(3)],
            ["v", "v", "w"], k=2, t=1, validity=SV2,
        )
        assert result.exhausted and result.all_ok


class TestExplorerMechanics:
    def test_budget_cap_reported(self):
        result = explore_mp(
            lambda: [ProtocolA() for _ in range(4)],
            ["a", "b", "c", "d"], k=3, t=1, validity=RV2,
            max_states=500,
        )
        assert not result.exhausted
        assert result.states == 500

    def test_dedup_reduces_state_count(self):
        with_dedup = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=2, t=1, validity=RV2,
            dedup=True,
        )
        without = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=2, t=1, validity=RV2,
            dedup=False, max_states=with_dedup.states * 3 + 1000,
        )
        assert with_dedup.states < without.states

    def test_fixed_crash_plan(self):
        result = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=2, t=1, validity=RV2,
            crash_adversary=CrashPlan({0: CrashPoint(after_sends=1)}),
        )
        assert result.exhausted and result.all_ok


class TestCrashPatterns:
    def test_includes_failure_free(self):
        plans = crash_patterns(3, 1, max_sends=2)
        assert plans[0] is None

    def test_budget_zero_only_failure_free(self):
        assert crash_patterns(3, 0, max_sends=2) == [None]

    def test_two_victim_plans_with_budget_two(self):
        plans = crash_patterns(3, 2, max_sends=2)
        two_victim = [
            p for p in plans
            if p is not None and len(p.potentially_faulty()) == 2
        ]
        assert two_victim


class TestSharedMemoryExhaustive:
    def test_protocol_e_n2_all_interleavings(self):
        from repro.core.validity import RV2
        from repro.harness.exhaustive import explore_sm
        from repro.protocols.protocol_e import protocol_e

        result = explore_sm(
            lambda: [protocol_e] * 2, ["a", "b"], k=2, t=2, validity=RV2,
        )
        assert result.exhausted
        assert result.all_ok, result.violations[:2]
        # with two different inputs, both all-default and split outcomes
        # occur across interleavings
        assert len(result.decision_sets) >= 2

    def test_protocol_e_n2_unanimous(self):
        from repro.core.validity import RV2
        from repro.harness.exhaustive import explore_sm
        from repro.protocols.protocol_e import protocol_e

        result = explore_sm(
            lambda: [protocol_e] * 2, ["v", "v"], k=2, t=2, validity=RV2,
        )
        assert result.exhausted and result.all_ok
        assert result.decision_sets == {frozenset({"v"})}

    def test_trivial_sm_program(self):
        from repro.core.validity import SV1
        from repro.harness.exhaustive import explore_sm
        from repro.protocols.trivial import trivial_own_value_sm

        result = explore_sm(
            lambda: [trivial_own_value_sm] * 3, ["a", "b", "c"],
            k=3, t=1, validity=SV1,
        )
        assert result.exhausted and result.all_ok
        assert result.decision_sets == {frozenset({"a", "b", "c"})}

    def test_budget_cap(self):
        from repro.core.validity import RV2
        from repro.harness.exhaustive import explore_sm
        from repro.protocols.protocol_e import protocol_e

        result = explore_sm(
            lambda: [protocol_e] * 3, ["a", "a", "b"], k=2, t=3,
            validity=RV2, max_states=300,
        )
        assert not result.exhausted
        assert result.all_ok

    def test_protocol_f_n2(self):
        from repro.core.validity import SV2
        from repro.harness.exhaustive import explore_sm
        from repro.protocols.protocol_f import protocol_f

        # n=2, t=0 is degenerate for F's loop (n-t=2 registers needed);
        # use k=2=n trivial agreement to exercise the machinery
        result = explore_sm(
            lambda: [protocol_f] * 2, ["a", "b"], k=2, t=1, validity=SV2,
        )
        assert result.exhausted
        assert result.all_ok, result.violations[:2]
