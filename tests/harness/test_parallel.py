"""Tests for the parallel fan-out engine.

The contract under test: for the same seed, parallel execution is
bit-identical to serial — any ``jobs`` value changes only wall-clock
time, never results.
"""

import dataclasses
import os
import signal
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.harness.attack import search_worst_run
from repro.harness.campaign import Campaign, run_campaign
from repro.harness.parallel import (
    POOL_AMORTIZATION_SECONDS,
    derive_seed,
    parallel_map,
    plan_execution,
    resolve_jobs,
    supervised_pool,
)
from repro.harness.sweep import SweepConfig, sweep_spec
from repro.protocols.base import get_spec


def _square(x):
    return x * x


class TestParallelMap:
    def test_preserves_order(self):
        tasks = list(range(20))
        assert parallel_map(_square, tasks, jobs=2) == [x * x for x in tasks]

    def test_serial_fallback_matches(self):
        tasks = list(range(7))
        assert parallel_map(_square, tasks, jobs=1) == parallel_map(
            _square, tasks, jobs=2
        )

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


class TestSupervisedPool:
    def test_clean_exit_reaps_workers(self):
        with supervised_pool(2) as executor:
            assert executor.submit(_square, 3).result() == 9
            workers = list(executor._processes.values())
        for process in workers:
            assert not process.is_alive()

    def test_worker_death_tears_down_and_annotates(self):
        # A SIGKILLed worker breaks the pool; the context manager must
        # reap every surviving child and annotate the propagating error
        # instead of leaking orphans (the old unclean-shutdown bug).
        workers = []
        with pytest.raises(BrokenProcessPool) as excinfo:
            with supervised_pool(2) as executor:
                executor.submit(_square, 1).result()  # pool is warm
                workers = list(executor._processes.values())
                executor.submit(_kill_self).result()
        assert workers
        for process in workers:
            process.join(timeout=5)
            assert not process.is_alive()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("supervised_pool" in note for note in notes)

    def test_user_exception_inside_block_still_cleans_up(self):
        workers = []
        with pytest.raises(RuntimeError, match="abort"):
            with supervised_pool(2) as executor:
                executor.submit(_square, 1).result()
                workers = list(executor._processes.values())
                raise RuntimeError("abort")
        assert workers
        for process in workers:
            process.join(timeout=5)
            assert not process.is_alive()


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) == resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "spec", 6, 3, 2) == derive_seed(42, "spec", 6, 3, 2)

    def test_sensitive_to_every_part(self):
        base = derive_seed(42, "spec", 6, 3, 2)
        assert derive_seed(43, "spec", 6, 3, 2) != base
        assert derive_seed(42, "spec2", 6, 3, 2) != base
        assert derive_seed(42, "spec", 6, 3, 3) != base

    def test_no_separator_collision(self):
        assert derive_seed("a", "bc") != derive_seed("ab", "c")

    def test_pinned_value(self):
        # Guards against accidental changes to the mixing scheme, which
        # would silently invalidate recorded campaign/bench seeds.
        assert derive_seed(1, "a") == 2829115043354823610


class TestPlanExecution:
    def test_serial_when_one_job(self):
        plan = plan_execution(1, 100)
        assert plan.mode == "serial" and not plan.parallel
        assert "jobs <= 1" in plan.reason

    def test_serial_when_single_task(self):
        plan = plan_execution(4, 1)
        assert plan.mode == "serial"

    def test_serial_when_work_does_not_amortize(self):
        # A tiny sweep must not pay pool spin-up: this is the
        # parallel-slower-than-serial regression guard.
        tiny = POOL_AMORTIZATION_SECONDS / 100
        plan = plan_execution(4, 10, est_task_seconds=tiny)
        assert plan.mode == "serial"
        assert "amortize" in plan.reason
        assert "serial" in plan.describe()

    def test_parallel_when_work_amortizes(self):
        plan = plan_execution(4, 10, est_task_seconds=1.0)
        assert plan.parallel
        assert plan.jobs == 4
        assert plan.chunksize >= 1
        assert "parallel x4" in plan.describe()

    def test_parallel_without_estimate_honours_request(self):
        plan = plan_execution(2, 4)
        assert plan.parallel and plan.jobs == 2

    def test_workers_capped_by_task_count(self):
        plan = plan_execution(16, 3, est_task_seconds=10.0)
        assert plan.parallel and plan.jobs == 3


class TestParallelSweep:
    def _compare(self, spec_name, n, k, t):
        spec = get_spec(spec_name)
        serial = sweep_spec(spec, n, k, t, SweepConfig(runs=12, seed=3), jobs=1)
        parallel = sweep_spec(spec, n, k, t, SweepConfig(runs=12, seed=3), jobs=2)
        assert serial.decisions_histogram == parallel.decisions_histogram
        assert serial.runs == parallel.runs
        assert len(serial.violations) == len(parallel.violations)

    def test_mp_crash(self):
        self._compare("protocol-a@mp-cr", 6, 3, 3)

    def test_sm_byzantine(self):
        self._compare("protocol-f@sm-byz", 6, 4, 2)

    def test_unregistered_spec_falls_back_to_serial(self):
        # Ad-hoc specs are not picklable by name; the sweep must still
        # work (serially) instead of crashing in the worker pool.
        probe = dataclasses.replace(
            get_spec("chaudhuri@mp-cr"), name="chaudhuri-parallel-probe"
        )
        stats = sweep_spec(probe, 5, 3, 2, SweepConfig(runs=6, seed=1), jobs=2)
        assert stats.runs == 6


class TestParallelCampaign:
    CAMPAIGN = Campaign(
        name="parallel-test",
        n_values=(5,),
        points_per_spec=1,
        runs_per_point=3,
        seed=9,
        spec_names=("chaudhuri@mp-cr", "protocol-e@sm-cr"),
    )

    def test_matches_serial(self):
        serial = run_campaign(self.CAMPAIGN, jobs=1)
        parallel = run_campaign(self.CAMPAIGN, jobs=2)
        assert [r.to_json() for r in serial.records] == [
            r.to_json() for r in parallel.records
        ]

    def test_parallel_resume(self, tmp_path):
        path = tmp_path / "campaign.json"
        run_campaign(self.CAMPAIGN, result_path=path, jobs=2)
        resumed = run_campaign(self.CAMPAIGN, result_path=path, jobs=2)
        fresh = run_campaign(self.CAMPAIGN)
        assert [r.to_json() for r in resumed.records] == [
            r.to_json() for r in fresh.records
        ]


class TestParallelAttack:
    def test_matches_serial(self):
        spec = get_spec("chaudhuri@mp-cr")
        serial = search_worst_run(spec, 5, 3, 2, attempts=12, seed=4, jobs=1)
        parallel = search_worst_run(spec, 5, 3, 2, attempts=12, seed=4, jobs=2)
        assert serial.attempts == parallel.attempts
        assert serial.best_distinct == parallel.best_distinct
        assert serial.violations_found == parallel.violations_found
        assert (serial.first_violation is None) == (
            parallel.first_violation is None
        )
        assert (
            serial.best_report.result.outcome.decisions
            == parallel.best_report.result.outcome.decisions
        )

    def test_best_report_has_full_trace(self):
        result = search_worst_run(
            get_spec("chaudhuri@mp-cr"), 5, 3, 2, attempts=6, seed=0, jobs=2
        )
        # The search itself runs in COUNTERS mode; the winner is re-run
        # with full tracing so replay/forensics keep working.
        assert len(result.best_report.result.trace) > 0


class TestCliJobs:
    def test_sweep_jobs(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "chaudhuri@mp-cr",
            "--n", "5", "--k", "3", "--t", "2",
            "--runs", "6", "--seed", "1", "--jobs", "2",
        ]) == 0
        assert "6 runs" in capsys.readouterr().out

    def test_campaign_jobs(self, capsys, tmp_path):
        from repro.cli import main

        assert main([
            "campaign", "--name", "cli-jobs-test", "--n", "5",
            "--points", "1", "--runs", "2", "--seed", "3",
            "--out", str(tmp_path / "c.json"), "--jobs", "2",
        ]) == 0
        assert "points" in capsys.readouterr().out
