"""Differential matrix and chaos tests for the shared-frontier engine.

The work-stealing engine trades the private frontier's bit-identity for
throughput, so its contract is *verdict equivalence*: for every visited
store kind (shared-memory digest tables and the sqlite disk table),
worker count, and early-exit setting, it must reach the same decision
sets, the same violation kinds, and the same exhaustiveness verdict as
the serial exact-store explorer -- on clean and on violating instances.

The chaos test SIGKILLs a worker mid-run: the scheduler must neither
hang nor mask the loss (``worker_failures`` counted, ``exhausted``
cleared), and the sqlite store file must stay uncorrupted.
"""

import os
import signal
import sqlite3
import threading
import time

import pytest

from repro.core.validity import RV2
from repro.harness import shared_frontier
from repro.harness.exhaustive import (
    SpecFactory,
    VisitedSpec,
    explore_mp,
    explore_sm,
)

MP_FACTORY = SpecFactory("protocol-a@mp-cr", n=3, k=2, t=1)
MP_INPUTS = ["v", "v", "w"]
SM_FACTORY = SpecFactory("protocol-e@sm-cr", n=2, k=2, t=2)
SM_INPUTS = ["a", "b"]


def _same_findings(a, b):
    assert a.decision_sets == b.decision_sets
    assert a.max_distinct_decisions == b.max_distinct_decisions
    assert a.violation_kinds() == b.violation_kinds()
    assert a.all_ok == b.all_ok


def _mp(shared=False, jobs=None, visited="exact", stop=False, k=2):
    return explore_mp(
        MP_FACTORY, MP_INPUTS, k=k, t=1, validity=RV2,
        jobs=jobs, visited=visited, shared=shared, stop_on_violation=stop,
    )


def _sm(shared=False, jobs=None, visited="exact", stop=False, k=2, t=2):
    return explore_sm(
        SM_FACTORY, SM_INPUTS, k=k, t=t, validity=RV2,
        jobs=jobs, visited=visited, shared=shared, stop_on_violation=stop,
    )


def _disk_spec(tmp_path, name="visited.sqlite"):
    return VisitedSpec(kind="disk", disk_path=str(tmp_path / name))


class TestSharedRequiresJobs:
    def test_mp_rejects_shared_without_jobs(self):
        with pytest.raises(ValueError):
            _mp(shared=True, jobs=None)

    def test_sm_rejects_shared_without_jobs(self):
        with pytest.raises(ValueError):
            _sm(shared=True, jobs=None)


class TestMPDifferentialMatrix:
    """{private, shared-mem, disk} x jobs {1, 4} vs the serial baseline."""

    def test_clean_instance_matrix(self, tmp_path):
        serial = _mp()
        assert serial.exhausted and serial.all_ok
        private = _mp(jobs=4)
        assert private.exhausted
        _same_findings(serial, private)
        for jobs in (1, 4):
            for name in ("exact", "compact", "disk"):
                visited = (
                    _disk_spec(tmp_path, f"clean-{jobs}.sqlite")
                    if name == "disk" else name
                )
                result = _mp(shared=True, jobs=jobs, visited=visited)
                assert result.exhausted, (name, jobs)
                assert result.stats.shared_store, (name, jobs)
                _same_findings(serial, result)

    def test_shared_jobs1_exact_matches_serial_counts(self):
        """One worker over the shared store is the serial exploration."""
        serial = _mp()
        lone = _mp(shared=True, jobs=1)
        assert lone.states == serial.states
        assert lone.runs == serial.runs
        _same_findings(serial, lone)

    def test_violating_instance_matrix(self, tmp_path):
        serial = _mp(k=1)
        assert serial.exhausted and not serial.all_ok
        for jobs in (1, 4):
            full = _mp(shared=True, jobs=jobs, visited="compact", k=1)
            assert full.exhausted
            _same_findings(serial, full)
            for visited in ("exact", _disk_spec(tmp_path, f"v{jobs}.sqlite")):
                early = _mp(
                    shared=True, jobs=jobs, visited=visited, stop=True, k=1
                )
                assert early.violations, (visited, jobs)
                assert not early.all_ok
                assert not early.exhausted  # stopped: no completeness claim
                assert early.violation_kinds() <= serial.violation_kinds()

    def test_private_frontier_early_exit_stays_bit_identical(self):
        """Early exit in the private frontier stops each subtree at its
        own first violation, so bit-identity per worker count holds."""
        one = _mp(jobs=1, stop=True, k=1)
        fanned = _mp(jobs=3, stop=True, k=1)
        assert one == fanned
        assert one.violations and not one.exhausted

    def test_early_exit_on_clean_instance_stays_exhaustive(self):
        serial = _mp()
        stopped = _mp(shared=True, jobs=2, stop=True)
        assert stopped.exhausted  # nothing to stop on
        _same_findings(serial, stopped)


class TestSMDifferentialMatrix:
    def test_clean_instance_matrix(self, tmp_path):
        serial = _sm()
        assert serial.exhausted and serial.all_ok
        for jobs in (1, 4):
            for name, visited in (
                ("compact", "compact"),
                ("disk", _disk_spec(tmp_path, f"sm{jobs}.sqlite")),
            ):
                result = _sm(shared=True, jobs=jobs, visited=visited)
                assert result.exhausted, (name, jobs)
                _same_findings(serial, result)

    def test_violating_instance_and_early_exit(self, tmp_path):
        serial = _sm(k=1, t=0)
        assert serial.exhausted and not serial.all_ok
        full = _sm(shared=True, jobs=4, k=1, t=0)
        assert full.exhausted
        _same_findings(serial, full)
        early = _sm(
            shared=True, jobs=2, k=1, t=0, stop=True,
            visited=_disk_spec(tmp_path, "sm-early.sqlite"),
        )
        assert early.violations and not early.exhausted
        assert early.violation_kinds() <= serial.violation_kinds()


class TestChaos:
    """SIGKILL a worker mid-run: no hang, no corruption, loss reported."""

    def _kill_one_later(self, delay):
        def hook(procs):
            def killer():
                time.sleep(delay)
                try:
                    os.kill(procs[0].pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            threading.Thread(target=killer, daemon=True).start()
        return hook

    def test_worker_killed_before_start(self, monkeypatch, tmp_path):
        """The assigned subtree dies with the worker: loss is reported."""
        monkeypatch.setattr(
            shared_frontier, "_CHAOS_HOOK",
            lambda procs: os.kill(procs[0].pid, signal.SIGKILL),
        )
        result = _mp(shared=True, jobs=2)
        assert result.stats.worker_failures >= 1
        assert not result.exhausted

    def test_worker_killed_mid_run_disk_store_survives(
        self, monkeypatch, tmp_path
    ):
        spec = _disk_spec(tmp_path, "chaos.sqlite")
        monkeypatch.setattr(
            shared_frontier, "_CHAOS_HOOK", self._kill_one_later(0.15)
        )
        chaotic = _mp(shared=True, jobs=2, visited=spec)
        # either the kill landed (loss reported, exhaustiveness gone) or
        # the run finished before the timer -- both must leave a
        # readable, uncorrupted store file
        if chaotic.stats.worker_failures:
            assert not chaotic.exhausted
        conn = sqlite3.connect(spec.disk_path)
        try:
            assert conn.execute(
                "PRAGMA integrity_check"
            ).fetchone()[0] == "ok"
        finally:
            conn.close()
        # a fresh store (interrupted tables may record expansions that
        # never finished, so they must not be trusted) reproduces the
        # serial verdict
        monkeypatch.setattr(shared_frontier, "_CHAOS_HOOK", None)
        rerun = _mp(
            shared=True, jobs=2,
            visited=_disk_spec(tmp_path, "chaos-rerun.sqlite"),
        )
        assert rerun.exhausted
        _same_findings(_mp(), rerun)
