"""Tests for atomic artifact writes (``repro.io``)."""

import json
import os

import pytest

from repro.io import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_leaves_original_intact_and_no_droppings(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # not a str: write fails
        assert target.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        # a bare filename has no parent directory component
        monkeypatch.chdir(tmp_path)
        atomic_write_text("bare.txt", "ok")
        assert (tmp_path / "bare.txt").read_text() == "ok"


class TestAtomicWriteJson:
    def test_repo_conventions(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"b": 1, "a": [2]})
        text = target.read_text()
        assert text.endswith("\n")
        assert text == json.dumps({"a": [2], "b": 1}, indent=2,
                                  sort_keys=True) + "\n"

    def test_unserializable_payload_keeps_old_file(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert os.listdir(tmp_path) == ["out.json"]
