"""Tests for Byzantine behaviours (message passing and shared memory)."""

from repro.core.validity import RV2, SV2, WV2
from repro.failures.byzantine import (
    GarbageProcess,
    MultiFaceProcess,
    MutatingProcess,
    MuteProcess,
    SUPPRESS,
    two_faced,
)
from repro.failures.byzantine_sm import (
    garbage_writer,
    mute_program,
    register_rewriter,
    with_fake_input,
)
from repro.harness.runner import run_mp, run_sm
from repro.net.schedulers import FifoScheduler
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_e import protocol_e
from repro.runtime.kernel import MPKernel


def run_with_byzantine(byzantine_process, n=5, t=1, inputs=None, validity=SV2):
    processes = [byzantine_process] + [ProtocolA() for _ in range(n - 1)]
    return run_mp(
        processes,
        inputs or ["v"] * n,
        k=2,
        t=t,
        validity=validity,
        byzantine=[0],
    )


class TestMuteProcess:
    def test_correct_processes_terminate_anyway(self):
        report = run_with_byzantine(MuteProcess())
        assert report.verdicts["termination"]
        for pid in range(1, 5):
            assert report.outcome.decisions[pid] == "v"

    def test_sends_nothing(self):
        report = run_with_byzantine(MuteProcess())
        assert all(r.pid != 0 for r in report.result.trace.of_kind("send"))


class TestGarbageProcess:
    def test_correct_processes_ignore_garbage(self):
        report = run_with_byzantine(GarbageProcess(seed=4))
        assert report.ok

    def test_garbage_actually_sent(self):
        report = run_with_byzantine(GarbageProcess(seed=4))
        assert any(r.pid == 0 for r in report.result.trace.of_kind("send"))


class TestMutatingProcess:
    def test_value_rewrite(self):
        liar = MutatingProcess(
            ProtocolA(), lambda dst, payload: (payload[0], "lie")
        )
        report = run_with_byzantine(liar, t=2)
        # 4 correct all started with v; a single liar cannot break SV2
        # here because n - 2t = 1 matching value suffices... verify the
        # run simply completed and the lie was on the wire.
        lies = [
            r for r in report.result.trace.of_kind("send")
            if r.pid == 0 and r.payload[1] == "lie"
        ]
        assert lies

    def test_suppress_drops_messages(self):
        silent = MutatingProcess(ProtocolA(), lambda dst, payload: SUPPRESS)
        report = run_with_byzantine(silent)
        assert all(r.pid != 0 for r in report.result.trace.of_kind("send"))


class TestMultiFace:
    def test_two_faces_seen_differently(self):
        n = 5
        byz = two_faced(ProtocolA, "x", peers_a=[1, 2], input_b="y")
        processes = [byz] + [ProtocolA() for _ in range(n - 1)]
        kernel = MPKernel(
            processes,
            ["z"] * n,
            t=1,
            scheduler=FifoScheduler(),
            byzantine=[0],
            stop_when_decided=False,
        )
        result = kernel.run()
        sends = [(r.peer, r.payload) for r in result.trace.of_kind("send") if r.pid == 0]
        values_to_1 = {p[1] for dst, p in sends if dst == 1}
        values_to_3 = {p[1] for dst, p in sends if dst == 3}
        assert values_to_1 == {"x"}
        assert values_to_3 == {"y"}

    def test_faces_do_not_leak_across(self):
        # Face isolation: group a peers never see face b's value.
        n = 6
        byz = MultiFaceProcess(
            ProtocolA,
            {"a": "va", "b": "vb"},
            lambda peer: "a" if peer < 3 else "b",
        )
        processes = [byz] + [ProtocolA() for _ in range(n - 1)]
        kernel = MPKernel(
            processes, ["w"] * n, t=1,
            scheduler=FifoScheduler(), byzantine=[0],
            stop_when_decided=False,
        )
        result = kernel.run()
        for r in result.trace.of_kind("send"):
            if r.pid == 0 and r.peer is not None and r.peer != 0:
                expected = "va" if r.peer < 3 else "vb"
                assert r.payload[1] == expected

    def test_requires_at_least_one_face(self):
        import pytest

        with pytest.raises(ValueError):
            MultiFaceProcess(ProtocolA, {}, lambda peer: None)


class TestSharedMemoryByzantine:
    def test_mute_program_takes_no_ops(self):
        report = run_sm(
            [protocol_e, protocol_e, mute_program],
            ["v", "v", "v"],
            k=2,
            t=1,
            validity=WV2,
            byzantine=[2],
        )
        writes = [r for r in report.result.trace.of_kind("write") if r.pid == 2]
        assert not writes
        assert report.verdicts["termination"]

    def test_garbage_writer_cannot_break_weak_validity(self):
        report = run_sm(
            [protocol_e, protocol_e, garbage_writer(seed=1)],
            ["v", "v", "v"],
            k=2,
            t=1,
            validity=WV2,
            byzantine=[2],
        )
        assert report.ok  # WV2 vacuous (failures occurred); agreement <= 2

    def test_register_rewriter_cycles_values(self):
        report = run_sm(
            [protocol_e, protocol_e, register_rewriter(["p", "q"])],
            ["v", "v", "v"],
            k=2,
            t=1,
            validity=WV2,
            byzantine=[2],
            stop_when_decided=False,
            max_ticks=5000,
        )
        writes = [r.payload for r in report.result.trace.of_kind("write") if r.pid == 2]
        assert "p" in writes and "q" in writes

    def test_with_fake_input_lies(self):
        report = run_sm(
            [protocol_e, protocol_e, with_fake_input(protocol_e, "lie")],
            ["v", "v", "v"],
            k=2,
            t=1,
            validity=WV2,
            byzantine=[2],
        )
        writes = [r.payload for r in report.result.trace.of_kind("write") if r.pid == 2]
        assert writes == ["lie"]
