"""Tests for crash adversaries."""

import pytest

from repro.failures.crash import (
    CrashAfterDecide,
    CrashPlan,
    CrashPoint,
    CrashWhenOthersDecide,
    RandomCrashes,
    combine,
)


class FakeView:
    def __init__(self, decided=()):
        self._decided = set(decided)

    def has_decided(self, pid):
        return pid in self._decided


class TestCrashPoint:
    def test_requires_some_bound(self):
        with pytest.raises(ValueError):
            CrashPoint()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CrashPoint(after_steps=-1)
        with pytest.raises(ValueError):
            CrashPoint(after_sends=-2)


class TestCrashPlan:
    def test_step_budget(self):
        plan = CrashPlan({1: CrashPoint(after_steps=2)})
        assert not plan.crashes_before_step(1, 0)
        assert not plan.crashes_before_step(1, 1)
        assert plan.crashes_before_step(1, 2)
        assert plan.crashes_before_step(1, 5)

    def test_send_budget(self):
        plan = CrashPlan({1: CrashPoint(after_sends=3)})
        assert not plan.crashes_at_send(1, 2)
        assert plan.crashes_at_send(1, 3)

    def test_non_victims_untouched(self):
        plan = CrashPlan({1: CrashPoint(after_steps=0)})
        assert not plan.crashes_before_step(0, 100)
        assert not plan.crashes_at_send(0, 100)

    def test_potentially_faulty(self):
        plan = CrashPlan({1: CrashPoint(after_steps=0), 3: CrashPoint(after_sends=1)})
        assert plan.potentially_faulty() == {1, 3}


class TestDynamicAdversaries:
    def test_crash_when_others_decide(self):
        adversary = CrashWhenOthersDecide(victims=[2], watch=[0, 1])
        assert set(adversary.dynamic_crashes(FakeView({0}))) == set()
        assert set(adversary.dynamic_crashes(FakeView({0, 1}))) == {2}

    def test_watch_must_be_nonempty(self):
        with pytest.raises(ValueError):
            CrashWhenOthersDecide(victims=[1], watch=[])

    def test_crash_after_own_decide(self):
        adversary = CrashAfterDecide(victims=[0, 1])
        assert set(adversary.dynamic_crashes(FakeView({0}))) == {0}
        assert set(adversary.dynamic_crashes(FakeView({0, 1, 2}))) == {0, 1}


class TestRandomCrashes:
    def test_within_budget(self):
        for seed in range(30):
            adversary = RandomCrashes(10, 3, seed=seed)
            assert len(adversary.potentially_faulty()) <= 3

    def test_deterministic(self):
        a = RandomCrashes(10, 3, seed=7)
        b = RandomCrashes(10, 3, seed=7)
        assert a.potentially_faulty() == b.potentially_faulty()

    def test_sometimes_failure_free(self):
        sizes = {
            len(RandomCrashes(10, 3, seed=seed).potentially_faulty())
            for seed in range(40)
        }
        assert 0 in sizes
        assert max(sizes) > 0


class TestCombine:
    def test_union_of_behaviours(self):
        combined = combine(
            CrashPlan({0: CrashPoint(after_steps=1)}),
            CrashWhenOthersDecide(victims=[1], watch=[2]),
        )
        assert combined.potentially_faulty() == {0, 1}
        assert combined.crashes_before_step(0, 1)
        assert not combined.crashes_before_step(1, 1)
        assert set(combined.dynamic_crashes(FakeView({2}))) == {1}
