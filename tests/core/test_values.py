"""Tests for the value domain and sentinels."""

import pickle

import pytest

from repro.core.values import (
    DEFAULT,
    EMPTY,
    Default,
    Empty,
    is_default,
    is_empty,
    order_key,
)


class TestSentinels:
    def test_default_is_singleton(self):
        assert Default() is DEFAULT

    def test_empty_is_singleton(self):
        assert Empty() is EMPTY

    def test_sentinels_are_distinct(self):
        assert DEFAULT is not EMPTY

    def test_default_differs_from_any_input_value(self):
        for value in (0, "", None, False, "v0", ()):
            assert DEFAULT != value

    def test_is_default(self):
        assert is_default(DEFAULT)
        assert not is_default("v0")
        assert not is_default(EMPTY)

    def test_is_empty(self):
        assert is_empty(EMPTY)
        assert not is_empty(DEFAULT)
        assert not is_empty(None)

    def test_repr_is_informative(self):
        assert "default" in repr(DEFAULT)
        assert "empty" in repr(EMPTY)

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(DEFAULT)) is DEFAULT
        assert pickle.loads(pickle.dumps(EMPTY)) is EMPTY

    def test_sentinels_are_hashable(self):
        assert len({DEFAULT, EMPTY, DEFAULT}) == 2


class TestOrderKey:
    def test_orders_ints_naturally(self):
        assert sorted([3, 1, 2], key=order_key) == [1, 2, 3]

    def test_orders_strings_naturally(self):
        assert sorted(["b", "a"], key=order_key) == ["a", "b"]

    def test_mixed_types_do_not_raise(self):
        values = ["b", 1, "a", 2]
        ordered = sorted(values, key=order_key)
        assert set(ordered) == set(values)

    def test_mixed_type_order_is_deterministic(self):
        values = ["b", 1, "a", 2]
        assert sorted(values, key=order_key) == sorted(
            list(reversed(values)), key=order_key
        )

    def test_sentinels_sort_after_real_values(self):
        values = [DEFAULT, "zzz", EMPTY, "a", 10**9]
        ordered = sorted(values, key=order_key)
        assert ordered[-2:] in ([DEFAULT, EMPTY], [EMPTY, DEFAULT])
        assert min(values, key=order_key) not in (DEFAULT, EMPTY)

    def test_unhashable_raises(self):
        with pytest.raises(TypeError):
            order_key([1, 2])
