"""Tests for the six validity conditions and the Fig. 1 lattice."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lattice import random_outcome
from repro.core.problem import Outcome
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    RV1,
    RV2,
    SV1,
    SV2,
    WV1,
    WV2,
    by_code,
    stronger_than,
    weaker_than,
)


def outcome(n, inputs, decisions, faulty=()):
    return Outcome(
        n=n,
        inputs=dict(enumerate(inputs)),
        decisions=decisions,
        faulty=frozenset(faulty),
    )


class TestSV1:
    def test_holds_when_decisions_are_correct_inputs(self):
        o = outcome(3, ["a", "b", "c"], {0: "b", 1: "b", 2: "a"})
        assert SV1.check(o)

    def test_fails_when_decision_is_faulty_process_input(self):
        o = outcome(3, ["a", "b", "c"], {1: "a", 2: "a"}, faulty={0})
        assert not SV1.check(o)

    def test_fails_on_fabricated_value(self):
        o = outcome(2, ["a", "b"], {0: "z", 1: "a"})
        assert not SV1.check(o)

    def test_ignores_faulty_process_decisions(self):
        o = outcome(3, ["a", "b", "c"], {0: "zzz", 1: "b"}, faulty={0})
        assert SV1.check(o)

    def test_undecided_processes_are_fine(self):
        o = outcome(3, ["a", "b", "c"], {})
        assert SV1.check(o)


class TestSV2:
    def test_vacuous_when_correct_inputs_differ(self):
        o = outcome(3, ["a", "b", "b"], {0: "z", 1: "z", 2: "z"})
        assert SV2.check(o)

    def test_fires_when_correct_unanimous(self):
        o = outcome(3, ["a", "v", "v"], {1: "v", 2: "v"}, faulty={0})
        assert SV2.check(o)

    def test_fails_when_unanimous_but_wrong_decision(self):
        o = outcome(3, ["a", "v", "v"], {1: "v", 2: "a"}, faulty={0})
        assert not SV2.check(o)

    def test_faulty_inputs_do_not_matter(self):
        # All correct start with v; the faulty one starts differently.
        o = outcome(4, ["x", "v", "v", "v"], {1: "v", 2: "v", 3: "v"}, faulty={0})
        assert SV2.check(o)


class TestRV1:
    def test_holds_on_any_input_value(self):
        o = outcome(3, ["a", "b", "c"], {0: "c", 1: "a", 2: "b"})
        assert RV1.check(o)

    def test_faulty_process_input_is_allowed(self):
        o = outcome(3, ["a", "b", "c"], {1: "a", 2: "a"}, faulty={0})
        assert RV1.check(o)

    def test_fails_on_fabricated_value(self):
        o = outcome(2, ["a", "b"], {0: "z"})
        assert not RV1.check(o)


class TestRV2:
    def test_vacuous_when_any_input_differs(self):
        # One faulty process had a different nominal input: premise off.
        o = outcome(3, ["x", "v", "v"], {1: "other", 2: "other"}, faulty={0})
        assert RV2.check(o)

    def test_fires_when_all_inputs_equal(self):
        o = outcome(3, ["v", "v", "v"], {0: "v", 1: "v", 2: "v"})
        assert RV2.check(o)

    def test_fails_on_default_fallback(self):
        from repro.core.values import DEFAULT

        o = outcome(3, ["v", "v", "v"], {0: "v", 1: DEFAULT, 2: "v"})
        assert not RV2.check(o)


class TestWV1:
    def test_vacuous_with_failures(self):
        o = outcome(3, ["a", "b", "c"], {1: "zzz", 2: "zzz"}, faulty={0})
        assert WV1.check(o)

    def test_constrains_failure_free_runs(self):
        o = outcome(3, ["a", "b", "c"], {0: "zzz", 1: "a", 2: "a"})
        assert not WV1.check(o)

    def test_holds_failure_free_with_input_decisions(self):
        o = outcome(3, ["a", "b", "c"], {0: "b", 1: "b", 2: "c"})
        assert WV1.check(o)


class TestWV2:
    def test_vacuous_with_failures(self):
        o = outcome(2, ["v", "v"], {0: "other", 1: "other"}, faulty={1})
        assert WV2.check(o)

    def test_vacuous_without_unanimity(self):
        o = outcome(2, ["v", "w"], {0: "anything", 1: "v"})
        # decision "anything" is not an input, but WV2's premise is off
        assert WV2.check(o)

    def test_fails_failure_free_unanimous_wrong(self):
        o = outcome(2, ["v", "v"], {0: "v", 1: "w"})
        assert not WV2.check(o)


class TestLattice:
    def test_by_code_round_trips(self):
        for condition in ALL_VALIDITY_CONDITIONS:
            assert by_code(condition.code) is condition

    def test_by_code_is_case_insensitive(self):
        assert by_code("rv1") is RV1

    def test_by_code_rejects_unknown(self):
        with pytest.raises(ValueError):
            by_code("XXX")

    def test_reflexive_implication(self):
        for condition in ALL_VALIDITY_CONDITIONS:
            assert condition.implies(condition)

    def test_paper_edges(self):
        assert SV1.implies(SV2)
        assert SV1.implies(RV1)
        assert SV2.implies(RV2)
        assert RV1.implies(RV2)
        assert RV1.implies(WV1)
        assert RV2.implies(WV2)
        assert WV1.implies(WV2)

    def test_transitive_closure(self):
        assert SV1.implies(WV2)
        assert SV1.implies(RV2)
        assert RV1.implies(WV2)

    def test_non_implications(self):
        assert not SV2.implies(RV1)
        assert not RV1.implies(SV2)
        assert not WV1.implies(RV1)
        assert not WV2.implies(WV1)
        assert not RV2.implies(RV1)
        assert not SV2.implies(SV1)

    def test_sv2_and_rv1_incomparable(self):
        assert not SV2.implies(RV1) and not RV1.implies(SV2)

    def test_wv2_is_weakest(self):
        for condition in ALL_VALIDITY_CONDITIONS:
            assert condition.implies(WV2)

    def test_sv1_is_strongest(self):
        for condition in ALL_VALIDITY_CONDITIONS:
            assert SV1.implies(condition)

    def test_weaker_stronger_are_strict_and_dual(self):
        assert weaker_than(WV2, SV1)
        assert stronger_than(SV1, WV2)
        assert not weaker_than(SV1, SV1)


@settings(max_examples=300, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_implications_hold_on_random_outcomes(seed):
    """Property: whenever D holds on an outcome, every weaker C holds too."""
    rng = random.Random(seed)
    o = random_outcome(rng)
    holds = {c.code: bool(c.check(o)) for c in ALL_VALIDITY_CONDITIONS}
    for c in ALL_VALIDITY_CONDITIONS:
        for d in ALL_VALIDITY_CONDITIONS:
            if c.implies(d) and holds[c.code]:
                assert holds[d.code], (c.code, d.code, o)
