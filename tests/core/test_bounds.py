"""Tests for O(log n) frontier bisection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import Thresholds, threshold
from repro.core.regions import frontier, region_map
from repro.core.validity import ALL_VALIDITY_CONDITIONS, RV1, RV2, SV1, WV2
from repro.models import ALL_MODELS, Model


class TestThreshold:
    def test_rv1_diagonal(self):
        for k in (2, 5, 9):
            result = threshold(Model.MP_CR, RV1, 10, k)
            assert result.max_possible_t == k - 1
            assert result.min_impossible_t == k
            assert result.open_count == 0

    def test_sv1_nothing_possible(self):
        result = threshold(Model.MP_CR, SV1, 10, 5)
        assert result.max_possible_t is None
        assert result.min_impossible_t == 1

    def test_sm_cr_rv2_everything_possible(self):
        result = threshold(Model.SM_CR, RV2, 10, 5)
        assert result.max_possible_t == 10
        assert result.min_impossible_t is None

    def test_isolated_open_point(self):
        # MP/CR WV2 at n=64, k=2: open exactly at t=32
        result = threshold(Model.MP_CR, WV2, 64, 2)
        assert result.max_possible_t == 31
        assert result.min_impossible_t == 33
        assert result.open_count == 1

    def test_scales_to_large_n(self):
        result = threshold(Model.MP_CR, RV2, 10**6, 2)
        # frontier at (k-1)n/k = n/2
        assert result.max_possible_t == 10**6 // 2 - 1
        assert result.min_impossible_t == 10**6 // 2 + 1

    def test_k_range_validated(self):
        with pytest.raises(ValueError):
            threshold(Model.MP_CR, RV1, 10, 1)
        with pytest.raises(ValueError):
            threshold(Model.MP_CR, RV1, 10, 10)


@settings(max_examples=120, deadline=None)
@given(
    st.sampled_from(ALL_MODELS),
    st.sampled_from(ALL_VALIDITY_CONDITIONS),
    st.integers(min_value=4, max_value=20),
    st.data(),
)
def test_bisection_matches_grid_scan(model, validity, n, data):
    """The O(log n) frontiers equal the exhaustive grid scan's."""
    k = data.draw(st.integers(min_value=2, max_value=n - 1))
    fast = threshold(model, validity, n, k)
    scanned = frontier(region_map(model, validity, n, k_values=[k]))[k]
    assert fast.max_possible_t == scanned["max_possible_t"]
    assert fast.min_impossible_t == scanned["min_impossible_t"]
    if fast.open_count is not None:
        assert fast.open_count == scanned["open_count"]
