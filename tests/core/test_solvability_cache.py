"""Property test: memoized ``classify`` agrees with the raw computation."""

import random

from repro.core.solvability import classify
from repro.core.validity import ALL_VALIDITY_CONDITIONS
from repro.models import ALL_MODELS


class TestClassifyCache:
    def test_cached_matches_uncached_on_random_grid(self):
        rng = random.Random(11)
        raw = classify.__wrapped__
        for _ in range(200):
            model = rng.choice(ALL_MODELS)
            validity = rng.choice(ALL_VALIDITY_CONDITIONS)
            n = rng.randrange(2, 20)
            k = rng.randrange(1, n + 2)
            t = rng.randrange(0, n + 2)
            assert classify(model, validity, n, k, t) == raw(
                model, validity, n, k, t
            ), (model, validity.code, n, k, t)

    def test_repeat_call_hits_cache(self):
        classify.cache_clear()
        args = (ALL_MODELS[0], ALL_VALIDITY_CONDITIONS[0], 8, 3, 2)
        first = classify(*args)
        second = classify(*args)
        assert second is first
        assert classify.cache_info().hits >= 1
