"""Tests for region maps and frontier extraction."""

from repro.core.regions import frontier, region_map
from repro.core.solvability import Solvability
from repro.core.validity import RV1, RV2, SV1, WV2
from repro.models import Model


class TestRegionMap:
    def test_default_grid_covers_paper_ranges(self):
        region = region_map(Model.MP_CR, RV1, 12)
        assert region.k_values == tuple(range(2, 12))
        assert region.t_values == tuple(range(1, 13))
        assert len(region.grid) == 10 * 12

    def test_rv1_region_is_t_less_than_k(self):
        region = region_map(Model.MP_CR, RV1, 10)
        for (k, t), verdict in region.grid.items():
            expected = (
                Solvability.POSSIBLE if t < k else Solvability.IMPOSSIBLE
            )
            assert verdict.status is expected, (k, t)

    def test_sv1_all_impossible(self):
        region = region_map(Model.MP_CR, SV1, 10)
        assert region.count(Solvability.IMPOSSIBLE) == len(region.grid)
        assert region.count(Solvability.POSSIBLE) == 0

    def test_sm_cr_rv2_all_possible(self):
        region = region_map(Model.SM_CR, RV2, 10)
        assert region.count(Solvability.POSSIBLE) == len(region.grid)

    def test_points_sorted_and_disjoint(self):
        region = region_map(Model.MP_CR, WV2, 8)
        possible = set(region.points(Solvability.POSSIBLE))
        impossible = set(region.points(Solvability.IMPOSSIBLE))
        open_points = set(region.points(Solvability.OPEN))
        assert not possible & impossible
        assert not possible & open_points
        assert possible | impossible | open_points == set(region.grid)

    def test_citations_used_mentions_deciding_lemmas(self):
        region = region_map(Model.MP_CR, RV1, 10)
        assert "Lemma 3.1" in region.citations_used()
        assert "Lemma 3.2" in region.citations_used()

    def test_custom_grid(self):
        region = region_map(Model.MP_CR, RV1, 10, k_values=[3], t_values=[1, 2, 3])
        assert set(region.grid) == {(3, 1), (3, 2), (3, 3)}


class TestFrontier:
    def test_rv1_thresholds(self):
        region = region_map(Model.MP_CR, RV1, 10)
        series = frontier(region)
        for k in region.k_values:
            assert series[k]["max_possible_t"] == k - 1
            assert series[k]["min_impossible_t"] == k
            assert series[k]["open_count"] == 0

    def test_wv2_isolated_open_points_where_k_divides_n(self):
        region = region_map(Model.MP_CR, WV2, 12)
        series = frontier(region)
        # k | 12 -> exactly one open point at t = (k-1)n/k
        for k in (2, 3, 4, 6):
            assert series[k]["open_count"] == 1, k
            assert series[k]["max_possible_t"] == (k - 1) * 12 // k - 1
        for k in (5, 7, 11):
            assert series[k]["open_count"] == 0, k

    def test_all_impossible_has_no_possible_threshold(self):
        region = region_map(Model.MP_BYZ, RV1, 8)
        series = frontier(region)
        for k in region.k_values:
            assert series[k]["max_possible_t"] is None
            assert series[k]["min_impossible_t"] == 1


class TestSeparationPoints:
    def test_sm_beats_mp_for_rv2(self):
        from repro.core.regions import separation_points

        points = separation_points(Model.MP_CR, Model.SM_CR, RV2, 12)
        assert points  # the whole band above (k-1)n/k
        assert (2, 10) in points
        # every separation point is above PROTOCOL A's frontier
        for (k, t) in points:
            assert t * k > (k - 1) * 12

    def test_byzantine_never_beats_crash(self):
        from repro.core.regions import separation_points
        from repro.core.validity import ALL_VALIDITY_CONDITIONS

        for validity in ALL_VALIDITY_CONDITIONS:
            assert separation_points(Model.MP_CR, Model.MP_BYZ, validity, 10) == []
            assert separation_points(Model.SM_CR, Model.SM_BYZ, validity, 10) == []

    def test_rv1_has_no_model_separation(self):
        from repro.core.regions import separation_points

        # RV1's t < k frontier is identical in MP/CR and SM/CR
        assert separation_points(Model.MP_CR, Model.SM_CR, RV1, 12) == []
