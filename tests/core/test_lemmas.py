"""Tests for the lemma registry and the Z / V functions of Lemma 3.16."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lemmas import ALL_LEMMAS, Lemma, lemma, v_function, z_function
from repro.models import Model


class TestVFunction:
    def test_degenerate_branch(self):
        # n - t - f <= 0 -> V = n - f
        assert v_function(4, 3, 1) == 3
        assert v_function(4, 2, 2) == 2

    def test_main_branch_no_failures(self):
        # f = 0 -> V = t + 1
        assert v_function(10, 3, 0) == 4
        assert v_function(64, 21, 0) == 22

    def test_main_branch_with_failures(self):
        # n=10, t=4, f=4: V = 1 + 4 * floor(6/2) = 13
        assert v_function(10, 4, 4) == 13

    def test_floor_is_one_below_n_over_3(self):
        # t < n/3 -> floor((n-f)/(n-t-f)) == 1 for all f <= t
        n, t = 16, 5
        for f in range(t + 1):
            assert (n - f) // (n - t - f) == 1


class TestZFunction:
    def test_equals_t_plus_one_below_n_over_3(self):
        for n, t in [(10, 2), (16, 5), (64, 21)]:
            assert z_function(n, t) == t + 1

    def test_grows_beyond_t_plus_one_above_n_over_3(self):
        assert z_function(10, 4) > 5
        assert z_function(64, 30) > 31

    def test_specific_value(self):
        # n=10, t=4: max over f of min(V, n-f) = 7 (attained at f in {2,3})
        assert z_function(10, 4) == 7

    def test_never_exceeds_n(self):
        for n in (4, 7, 12):
            for t in range(1, n + 1):
                assert z_function(n, t) <= n

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=2, max_value=60), st.data())
    def test_z_at_least_t_plus_one_while_t_below_n(self, n, data):
        t = data.draw(st.integers(min_value=1, max_value=n - 1))
        assert z_function(n, t) >= min(t + 1, n - t)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.data())
    def test_z_monotone_in_t(self, n, data):
        t = data.draw(st.integers(min_value=1, max_value=n - 1))
        assert z_function(n, t + 1) >= z_function(n, t) - 1  # weak coupling
        # strong monotonicity of the protocol requirement region:
        # a larger t never makes the required k smaller below t+1
        assert z_function(n, t + 1) >= t + 1


class TestLemmaRegistry:
    def test_all_paper_lemmas_present(self):
        ids = {entry.lemma_id for entry in ALL_LEMMAS}
        expected = {
            "Lemma 3.1", "Lemma 3.2", "Lemma 3.3", "Lemma 3.4", "Lemma 3.5",
            "Lemma 3.6", "Lemma 3.7", "Lemma 3.8", "Lemma 3.9", "Lemma 3.10",
            "Lemma 3.11", "Lemma 3.12", "Lemma 3.13", "Lemma 3.15",
            "Lemma 3.16", "Lemma 4.1", "Lemma 4.2", "Lemma 4.3", "Lemma 4.4",
            "Lemma 4.5", "Lemma 4.6", "Lemma 4.7", "Lemma 4.8", "Lemma 4.9",
            "Lemma 4.10", "Lemma 4.11", "Lemma 4.12", "Lemma 4.13",
        }
        assert expected <= ids

    def test_lemma_lookup(self):
        entries = lemma("Lemma 3.2")
        assert len(entries) == 2  # stated for both crash models
        assert {e.model for e in entries} == {Model.MP_CR, Model.SM_CR}

    def test_unknown_lemma_raises(self):
        with pytest.raises(ValueError):
            lemma("Lemma 9.9")

    def test_possibilities_name_protocols(self):
        for entry in ALL_LEMMAS:
            if entry.kind == "possibility":
                assert entry.protocol, entry.lemma_id

    def test_regions_are_decidable_on_the_grid(self):
        for entry in ALL_LEMMAS:
            assert isinstance(entry.applies(12, 3, 2), bool)


class TestSpecificBounds:
    def test_lemma_3_7_strict_boundary(self):
        entry = next(e for e in ALL_LEMMAS if e.lemma_id == "Lemma 3.7")
        n, k = 9, 3
        # (k-1)n/k = 6: t=5 in, t=6 out
        assert entry.applies(n, k, 5)
        assert not entry.applies(n, k, 6)

    def test_lemma_3_3_boundary_leaves_multiples_open(self):
        entry = next(e for e in ALL_LEMMAS if e.lemma_id == "Lemma 3.3")
        # n=64, k=2: impossible needs t >= 32.5 -> t=33; t=32 not covered
        assert not entry.applies(64, 2, 32)
        assert entry.applies(64, 2, 33)

    def test_lemma_3_6_boundary(self):
        entry = next(e for e in ALL_LEMMAS if e.lemma_id == "Lemma 3.6")
        # kn/(2k+1) at n=10, k=2 is 4: t=4 impossible, t=3 not covered
        assert entry.applies(10, 2, 4)
        assert not entry.applies(10, 2, 3)

    def test_lemma_3_12_threshold_exact_fraction(self):
        entry = next(e for e in ALL_LEMMAS if e.lemma_id == "Lemma 3.12")
        n, t = 9, 3
        # (n-t)/(n-2t) + 1 = 6/3 + 1 = 3 -> k >= 3
        assert entry.applies(n, 3, t)
        assert not entry.applies(n, 2, t)

    def test_lemma_4_7_region(self):
        entry = next(e for e in ALL_LEMMAS if e.lemma_id == "Lemma 4.7")
        assert entry.applies(10, 5, 3)
        assert not entry.applies(10, 4, 3)  # k > t+1 required
