"""Tests for the 24-variant solvability classifier.

These pin the paper's headline characterization: per-figure spot checks,
consistency (no point derivable both ways), and the structural
monotonicity any correct characterization must have (harder with more
faults, easier with larger k).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvability import (
    Classification,
    ClassificationConflict,
    Solvability,
    classify,
    impossibility_lemmas_for,
    possibility_lemmas_for,
)
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    RV1,
    RV2,
    SV1,
    SV2,
    WV1,
    WV2,
)
from repro.models import ALL_MODELS, Model

POSSIBLE = Solvability.POSSIBLE
IMPOSSIBLE = Solvability.IMPOSSIBLE
OPEN = Solvability.OPEN


def status(model, validity, n, k, t):
    return classify(model, validity, n, k, t).status


class TestDegenerateCases:
    def test_t_zero_always_possible(self):
        for model in ALL_MODELS:
            for validity in ALL_VALIDITY_CONDITIONS:
                assert status(model, validity, 8, 3, 0) is POSSIBLE

    def test_k_equals_n_always_possible(self):
        for model in ALL_MODELS:
            for validity in ALL_VALIDITY_CONDITIONS:
                assert status(model, validity, 8, 8, 8) is POSSIBLE

    def test_k_one_impossible_with_failures(self):
        for model in ALL_MODELS:
            for validity in ALL_VALIDITY_CONDITIONS:
                verdict = classify(model, validity, 8, 1, 1)
                assert verdict.status is IMPOSSIBLE
                assert any("FLP" in c for c in verdict.citations)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            classify(Model.MP_CR, RV1, 0, 1, 1)
        with pytest.raises(ValueError):
            classify(Model.MP_CR, RV1, 4, 0, 1)
        with pytest.raises(ValueError):
            classify(Model.MP_CR, RV1, 4, 2, -1)


class TestMPCrash:
    """Fig. 2 spot checks at n = 64."""

    def test_rv1_complete_characterization(self):
        assert status(Model.MP_CR, RV1, 64, 5, 4) is POSSIBLE
        assert status(Model.MP_CR, RV1, 64, 5, 5) is IMPOSSIBLE
        assert status(Model.MP_CR, RV1, 64, 63, 62) is POSSIBLE
        assert status(Model.MP_CR, RV1, 64, 2, 64) is IMPOSSIBLE

    def test_wv1_matches_rv1(self):
        for k, t in [(5, 4), (5, 5), (2, 1), (2, 2)]:
            assert status(Model.MP_CR, WV1, 64, k, t) is status(
                Model.MP_CR, RV1, 64, k, t
            )

    def test_rv2_frontier_with_isolated_open_points(self):
        # k=2, n=64: possible t <= 31, open at exactly t = 32, impossible t >= 33
        assert status(Model.MP_CR, RV2, 64, 2, 31) is POSSIBLE
        assert status(Model.MP_CR, RV2, 64, 2, 32) is OPEN
        assert status(Model.MP_CR, RV2, 64, 2, 33) is IMPOSSIBLE

    def test_rv2_no_open_point_when_k_does_not_divide_n(self):
        # k=3, n=64: (k-1)n/k = 42.67 -> possible t <= 42, impossible t >= 43
        assert status(Model.MP_CR, RV2, 64, 3, 42) is POSSIBLE
        assert status(Model.MP_CR, RV2, 64, 3, 43) is IMPOSSIBLE

    def test_wv2_same_frontier_as_rv2(self):
        for k, t in [(2, 31), (2, 32), (2, 33), (3, 42), (3, 43)]:
            assert status(Model.MP_CR, WV2, 64, k, t) is status(
                Model.MP_CR, RV2, 64, k, t
            )

    def test_sv2_gap_between_protocol_b_and_lemma_3_6(self):
        # k=2, n=64: possible t < 16, impossible t >= 25.6 -> 26, gap between
        assert status(Model.MP_CR, SV2, 64, 2, 15) is POSSIBLE
        assert status(Model.MP_CR, SV2, 64, 2, 16) is OPEN
        assert status(Model.MP_CR, SV2, 64, 2, 25) is OPEN
        assert status(Model.MP_CR, SV2, 64, 2, 26) is IMPOSSIBLE

    def test_sv1_impossible_everywhere(self):
        for k in (2, 32, 63):
            for t in (1, 10, 64):
                assert status(Model.MP_CR, SV1, 64, k, t) is IMPOSSIBLE


class TestMPByzantine:
    """Fig. 4 spot checks at n = 64."""

    def test_rv1_and_sv1_impossible_everywhere(self):
        for validity in (RV1, SV1):
            for k, t in [(2, 1), (32, 10), (63, 64)]:
                assert status(Model.MP_BYZ, validity, 64, k, t) is IMPOSSIBLE

    def test_wv2_protocol_a_region(self):
        # Lemma 3.12: t < n/2 and k >= (n-t)/(n-2t)+1
        assert status(Model.MP_BYZ, WV2, 64, 3, 20) is POSSIBLE  # (44/24)+1<3
        # Lemma 3.13: t >= n/2, k >= t+1
        assert status(Model.MP_BYZ, WV2, 64, 40, 39) is POSSIBLE

    def test_wv2_impossible_region(self):
        # Lemma 3.9: t >= kn/(2k+1) and t >= k: k=2, t >= 25.6 and >= 2
        assert status(Model.MP_BYZ, WV2, 64, 2, 26) is IMPOSSIBLE

    def test_wv1_z_function_region(self):
        # t=21 < 64/3: Z = 22
        assert status(Model.MP_BYZ, WV1, 64, 22, 21) is POSSIBLE
        assert status(Model.MP_BYZ, WV1, 64, 21, 21) is IMPOSSIBLE  # t >= k

    def test_wv1_substantial_gap(self):
        # Between t >= k impossibility and k >= Z(n,t) possibility.
        assert status(Model.MP_BYZ, WV1, 64, 25, 24) is OPEN

    def test_sv2_protocol_c_region(self):
        assert status(Model.MP_BYZ, SV2, 64, 4, 10) is POSSIBLE
        # Impossible from Lemma 3.6 carried: t >= kn/(2k+1)
        assert status(Model.MP_BYZ, SV2, 64, 2, 26) is IMPOSSIBLE

    def test_rv2_impossibility_carries_up_to_sv2(self):
        # Lemma 3.11: t >= kn/(2(k+1)): k=2, t >= 64/3 -> 22.  RV2 is
        # weaker than SV2, so the bound applies to SV2 as well and is
        # stricter there than Lemma 3.6's kn/(2k+1).
        assert status(Model.MP_BYZ, RV2, 64, 2, 22) is IMPOSSIBLE
        sv2 = classify(Model.MP_BYZ, SV2, 64, 2, 22)
        assert sv2.status is IMPOSSIBLE
        assert "Lemma 3.11" in sv2.citations
        # Below that bound and above PROTOCOL C's region, SV2 stays open.
        assert status(Model.MP_BYZ, SV2, 64, 2, 20) is OPEN
        assert status(Model.MP_BYZ, SV2, 64, 2, 15) is POSSIBLE


class TestSMCrash:
    """Fig. 5 spot checks at n = 64."""

    def test_rv2_possible_everywhere(self):
        for k in (2, 10, 63):
            for t in (1, 32, 64):
                verdict = classify(Model.SM_CR, RV2, 64, k, t)
                assert verdict.status is POSSIBLE
                assert "Lemma 4.5" in verdict.citations

    def test_wv2_possible_everywhere(self):
        for k, t in [(2, 64), (5, 40)]:
            assert status(Model.SM_CR, WV2, 64, k, t) is POSSIBLE

    def test_sv2_protocol_f_extends_region(self):
        # k > t+1 solvable even where message passing is impossible
        assert status(Model.SM_CR, SV2, 64, 40, 38) is POSSIBLE
        assert status(Model.MP_CR, SV2, 64, 40, 38) is IMPOSSIBLE

    def test_sv2_impossible_region(self):
        # Lemma 4.3: t >= n/2 and t >= k
        assert status(Model.SM_CR, SV2, 64, 30, 32) is IMPOSSIBLE

    def test_sv2_gap(self):
        # k <= t+1, t >= (k-1)n/2k = 16, t < n/2: e.g. k=2, t=20
        assert status(Model.SM_CR, SV2, 64, 2, 20) is OPEN

    def test_rv1_complete(self):
        assert status(Model.SM_CR, RV1, 64, 5, 4) is POSSIBLE
        assert status(Model.SM_CR, RV1, 64, 5, 5) is IMPOSSIBLE


class TestSMByzantine:
    """Fig. 6 spot checks at n = 64."""

    def test_wv2_possible_everywhere(self):
        for k, t in [(2, 64), (3, 33), (63, 1)]:
            verdict = classify(Model.SM_BYZ, WV2, 64, k, t)
            assert verdict.status is POSSIBLE

    def test_rv1_impossible_everywhere(self):
        for k, t in [(2, 1), (63, 64)]:
            assert status(Model.SM_BYZ, RV1, 64, k, t) is IMPOSSIBLE

    def test_sv2_protocol_f_region(self):
        assert status(Model.SM_BYZ, SV2, 64, 33, 31) is POSSIBLE
        assert status(Model.SM_BYZ, SV2, 64, 30, 32) is IMPOSSIBLE

    def test_rv2_small_gap(self):
        # k <= t, t < n/2 and outside C(l): k=2, t=20
        assert status(Model.SM_BYZ, RV2, 64, 2, 20) is OPEN

    def test_wv1_z_region(self):
        assert status(Model.SM_BYZ, WV1, 64, 22, 21) is POSSIBLE
        assert status(Model.SM_BYZ, WV1, 64, 21, 21) is IMPOSSIBLE


class TestStructuralProperties:
    RANK = {POSSIBLE: 0, OPEN: 1, IMPOSSIBLE: 2}

    @pytest.mark.parametrize("n", [4, 6, 9, 13, 16])
    def test_no_conflicts_and_monotone(self, n):
        for model in ALL_MODELS:
            for validity in ALL_VALIDITY_CONDITIONS:
                previous_by_k = {}
                for t in range(1, n + 1):
                    previous_rank_k = None
                    for k in range(2, n):
                        verdict = classify(model, validity, n, k, t)  # no raise
                        rank = self.RANK[verdict.status]
                        # Harder with more faults: rank non-decreasing in t.
                        if k in previous_by_k:
                            assert rank >= previous_by_k[k], (
                                model, validity.code, n, k, t
                            )
                        previous_by_k[k] = rank
                        # Easier with larger k: rank non-increasing in k.
                        if previous_rank_k is not None:
                            assert rank <= previous_rank_k, (
                                model, validity.code, n, k, t
                            )
                        previous_rank_k = rank

    @settings(max_examples=150, deadline=None)
    @given(
        st.sampled_from(ALL_MODELS),
        st.sampled_from(ALL_VALIDITY_CONDITIONS),
        st.integers(min_value=4, max_value=48),
        st.data(),
    )
    def test_weaker_validity_never_harder(self, model, validity, n, data):
        """If SC(D) is possible then every weaker SC(C) is possible too."""
        k = data.draw(st.integers(min_value=2, max_value=n - 1))
        t = data.draw(st.integers(min_value=1, max_value=n))
        verdict = classify(model, validity, n, k, t)
        for weaker in ALL_VALIDITY_CONDITIONS:
            if validity.implies(weaker) and weaker is not validity:
                weaker_verdict = classify(model, weaker, n, k, t)
                if verdict.status is POSSIBLE:
                    assert weaker_verdict.status is POSSIBLE
                if weaker_verdict.status is IMPOSSIBLE:
                    assert verdict.status is IMPOSSIBLE

    @settings(max_examples=150, deadline=None)
    @given(
        st.sampled_from(ALL_VALIDITY_CONDITIONS),
        st.integers(min_value=4, max_value=48),
        st.data(),
    )
    def test_model_strength_relations(self, validity, n, data):
        """SM no harder than MP; crash no harder than Byzantine."""
        k = data.draw(st.integers(min_value=2, max_value=n - 1))
        t = data.draw(st.integers(min_value=1, max_value=n))
        for mp, sm in [
            (Model.MP_CR, Model.SM_CR),
            (Model.MP_BYZ, Model.SM_BYZ),
        ]:
            if classify(mp, validity, n, k, t).status is POSSIBLE:
                assert classify(sm, validity, n, k, t).status is POSSIBLE
        for byz, cr in [
            (Model.MP_BYZ, Model.MP_CR),
            (Model.SM_BYZ, Model.SM_CR),
        ]:
            if classify(byz, validity, n, k, t).status is POSSIBLE:
                assert classify(cr, validity, n, k, t).status is POSSIBLE


class TestLemmaApplicability:
    def test_possibility_lemmas_carry_into_weaker_conditions(self):
        ids = {e.lemma_id for e in possibility_lemmas_for(Model.MP_CR, WV2)}
        assert "Lemma 3.7" in ids   # RV2 protocol serves WV2
        assert "Lemma 3.1" in ids   # RV1 protocol serves WV2

    def test_byzantine_protocols_carry_into_crash(self):
        ids = {e.lemma_id for e in possibility_lemmas_for(Model.MP_CR, SV2)}
        assert "Lemma 3.15" in ids

    def test_mp_protocols_carry_into_sm(self):
        ids = {e.lemma_id for e in possibility_lemmas_for(Model.SM_CR, RV2)}
        assert "Lemma 3.7" in ids

    def test_sm_impossibilities_carry_into_mp(self):
        ids = {e.lemma_id for e in impossibility_lemmas_for(Model.MP_CR, SV2)}
        assert "Lemma 4.3" in ids

    def test_crash_impossibilities_carry_into_byzantine(self):
        ids = {e.lemma_id for e in impossibility_lemmas_for(Model.MP_BYZ, SV1)}
        assert "Lemma 3.5" in ids

    def test_sm_possibility_does_not_carry_into_mp(self):
        ids = {e.lemma_id for e in possibility_lemmas_for(Model.MP_CR, RV2)}
        assert "Lemma 4.5" not in ids
