"""Tests for SCProblem, Outcome and the termination/agreement checkers."""

import pytest

from repro.core.problem import (
    Outcome,
    SCProblem,
    check_agreement,
    check_termination,
)
from repro.core.validity import RV1, WV2


def outcome(n, inputs, decisions, faulty=()):
    return Outcome(
        n=n,
        inputs=dict(enumerate(inputs)),
        decisions=decisions,
        faulty=frozenset(faulty),
    )


class TestOutcome:
    def test_correct_is_complement_of_faulty(self):
        o = outcome(4, "abcd", {}, faulty={1, 3})
        assert o.correct == {0, 2}

    def test_failure_count(self):
        assert outcome(4, "abcd", {}, faulty={0}).failure_count == 1
        assert outcome(4, "abcd", {}).failure_free

    def test_correct_decisions_filters_faulty(self):
        o = outcome(3, "abc", {0: "x", 1: "y"}, faulty={0})
        assert o.correct_decisions() == {1: "y"}
        assert o.correct_decision_values() == {"y"}
        assert o.all_decision_values() == {"x", "y"}

    def test_input_value_helpers(self):
        o = outcome(3, ["a", "a", "b"], {}, faulty={2})
        assert o.input_values() == {"a", "b"}
        assert o.correct_input_values() == {"a"}

    def test_rejects_wrong_input_ids(self):
        with pytest.raises(ValueError):
            Outcome(n=2, inputs={0: "a"}, decisions={}, faulty=frozenset())

    def test_rejects_unknown_decision_ids(self):
        with pytest.raises(ValueError):
            outcome(2, "ab", {5: "x"})

    def test_rejects_out_of_range_faulty(self):
        with pytest.raises(ValueError):
            outcome(2, "ab", {}, faulty={7})

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            Outcome(n=0, inputs={}, decisions={}, faulty=frozenset())


class TestTermination:
    def test_holds_when_all_correct_decided(self):
        o = outcome(3, "abc", {0: "a", 2: "a"}, faulty={1})
        assert check_termination(o)

    def test_fails_when_correct_undecided(self):
        o = outcome(3, "abc", {0: "a"}, faulty={1})
        verdict = check_termination(o)
        assert not verdict
        assert "2" in verdict.detail

    def test_faulty_need_not_decide(self):
        o = outcome(2, "ab", {1: "b"}, faulty={0})
        assert check_termination(o)


class TestAgreement:
    def test_within_k(self):
        o = outcome(4, "abcd", {0: "a", 1: "b", 2: "a", 3: "b"})
        assert check_agreement(o, 2)

    def test_exceeds_k(self):
        o = outcome(4, "abcd", {0: "a", 1: "b", 2: "c", 3: "b"})
        assert not check_agreement(o, 2)

    def test_faulty_decisions_excluded(self):
        o = outcome(4, "abcd", {0: "a", 1: "b", 2: "c"}, faulty={2})
        assert check_agreement(o, 2)

    def test_k_equals_one_is_consensus(self):
        o = outcome(2, "ab", {0: "a", 1: "b"})
        assert not check_agreement(o, 1)
        o2 = outcome(2, "ab", {0: "a", 1: "a"})
        assert check_agreement(o2, 1)


class TestSCProblem:
    def test_describe_mentions_parameters(self):
        problem = SCProblem(n=5, k=2, t=1, validity=RV1)
        text = str(problem)
        assert "k=2" in text and "t=1" in text and "RV1" in text and "n=5" in text

    def test_check_returns_three_verdicts(self):
        problem = SCProblem(n=2, k=1, t=0, validity=RV1)
        o = outcome(2, "aa", {0: "a", 1: "a"})
        verdicts = problem.check(o)
        assert set(verdicts) == {"termination", "agreement", "validity"}
        assert problem.satisfied_by(o)

    def test_violations_collects_failures(self):
        problem = SCProblem(n=2, k=1, t=0, validity=RV1)
        o = outcome(2, "ab", {0: "a", 1: "b"})
        assert set(problem.violations(o)) == {"agreement"}

    def test_budget_enforced(self):
        problem = SCProblem(n=3, k=2, t=1, validity=WV2)
        o = outcome(3, "abc", {}, faulty={0, 1})
        with pytest.raises(ValueError):
            problem.check(o)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SCProblem(n=3, k=0, t=1, validity=RV1)
        with pytest.raises(ValueError):
            SCProblem(n=3, k=4, t=1, validity=RV1)
        with pytest.raises(ValueError):
            SCProblem(n=3, k=2, t=-1, validity=RV1)
