"""Tests for the shard supervisor: retries, timeouts, deaths, fallback.

Faults are injected with :class:`ChaosPolicy` (rate 1.0 on the first
attempt only), so every test exercises the genuine recovery path --
real SIGKILLed children, real hung children -- and still converges
deterministically on the retry.
"""

import pytest

from repro.jobs import (
    ChaosPolicy,
    JobStore,
    RetryPolicy,
    ShardState,
    run_shards,
)

#: Fast-converging policy for tests: tiny backoff, generous retries.
FAST = RetryPolicy(
    max_attempts=3, timeout=5.0, backoff_base=0.01, backoff_max=0.05
)


def _double(payload):
    return {"value": payload["x"] * 2}


def _boom(payload):
    raise ValueError(f"cannot process {payload['x']}")


@pytest.fixture
def store():
    with JobStore(":memory:") as js:
        yield js


def _seed_run(store, run_id="r", n=3):
    store.create_run(run_id, "test", {})
    store.add_shards(run_id, [(f"s{i}", {"x": i}) for i in range(n)])
    return run_id


class TestHappyPath:
    def test_serial_drains_queue(self, store):
        run = _seed_run(store)
        report = run_shards(store, run, _double, jobs=1, policy=FAST)
        assert report.mode == "serial"
        assert report.completed == 3
        assert report.drained and not report.stopped_early
        assert store.results(run) == [{"value": 0}, {"value": 2}, {"value": 4}]

    def test_parallel_matches_serial(self, store):
        run_a = _seed_run(store, "a")
        run_b = _seed_run(store, "b")
        run_shards(store, run_a, _double, jobs=1, policy=FAST)
        report = run_shards(store, run_b, _double, jobs=2, policy=FAST)
        assert report.mode == "parallel" and report.jobs == 2
        assert store.results(run_a) == store.results(run_b)

    def test_rerun_on_drained_queue_is_noop(self, store):
        run = _seed_run(store)
        run_shards(store, run, _double, jobs=1, policy=FAST)
        report = run_shards(store, run, _double, jobs=1, policy=FAST)
        assert report.completed == 0 and report.drained


class TestRetries:
    def test_transient_error_retried_then_converges(self, store):
        run = _seed_run(store)
        chaos = ChaosPolicy(seed=1, error_rate=1.0)  # first attempts fail
        report = run_shards(
            store, run, _double, jobs=1, policy=FAST, chaos=chaos
        )
        assert report.completed == 3
        assert report.retries == 3  # one injected failure per shard
        assert report.failed == 0
        assert store.results(run) == [{"value": 0}, {"value": 2}, {"value": 4}]
        assert len(store.events(run, kind="retry")) == 3

    def test_exhausted_retries_mark_shard_failed(self, store):
        run = _seed_run(store, n=2)
        policy = RetryPolicy(
            max_attempts=2, timeout=5.0, backoff_base=0.01, backoff_max=0.02
        )
        report = run_shards(store, run, _boom, jobs=1, policy=policy)
        assert report.completed == 0
        assert report.failed == 2
        assert report.retries == 2  # one retry each before giving up
        assert report.drained  # degraded completion, not a wedge
        for shard in store.shards(run):
            assert shard.state == ShardState.FAILED
            assert "ValueError" in shard.error
            assert shard.attempts == 2
        assert len(store.events(run, kind="failed")) == 2

    def test_attempt_counter_spans_sessions(self, store):
        # One failing session then another: attempts accumulate in the
        # store, so the retry budget is global, not per-invocation.
        run = _seed_run(store, n=1)
        policy = RetryPolicy(
            max_attempts=2, timeout=5.0, backoff_base=0.01, backoff_max=0.02
        )
        run_shards(store, run, _boom, jobs=1, policy=policy, max_shards=1)
        assert store.get(run, "s0").state == ShardState.FAILED


class TestWorkerDeath:
    def test_sigkilled_worker_is_detected_and_retried(self, store):
        run = _seed_run(store, n=2)
        chaos = ChaosPolicy(seed=1, kill_rate=1.0)
        report = run_shards(
            store, run, _double, jobs=2, policy=FAST, chaos=chaos
        )
        assert report.worker_deaths == 2
        assert report.completed == 2
        assert report.failed == 0
        assert store.results(run) == [{"value": 0}, {"value": 2}]
        deaths = store.events(run, kind="worker-death")
        assert len(deaths) == 2
        assert all("exited with code" in e.detail for e in deaths)

    def test_one_death_does_not_disturb_other_shards(self, store):
        run = _seed_run(store, n=4)
        # kill_rate 0.5: deterministically kills some first attempts
        chaos = ChaosPolicy(seed=3, kill_rate=0.5)
        killed = sum(
            1 for i in range(4) if chaos.action(f"s{i}", 1) == "kill"
        )
        assert 0 < killed < 4  # the seed must exercise both paths
        report = run_shards(
            store, run, _double, jobs=2, policy=FAST, chaos=chaos
        )
        assert report.worker_deaths == killed
        assert report.completed == 4


class TestTimeouts:
    def test_hung_worker_is_terminated_and_retried(self, store):
        run = _seed_run(store, n=1)
        policy = RetryPolicy(
            max_attempts=2, timeout=0.3, backoff_base=0.01, backoff_max=0.02
        )
        chaos = ChaosPolicy(seed=1, hang_rate=1.0, hang_seconds=60.0)
        report = run_shards(
            store, run, _double, jobs=2, policy=policy, chaos=chaos
        )
        assert report.timeouts == 1
        assert report.completed == 1
        assert store.results(run) == [{"value": 0}]
        (event,) = store.events(run, kind="timeout")
        assert "terminated" in event.detail


class TestSerialChaos:
    def test_kill_and_hang_are_skipped_in_process(self, store):
        # In serial mode a SIGKILL would take down the supervisor
        # itself; the policy decision is recorded as skipped instead.
        run = _seed_run(store, n=1)
        chaos = ChaosPolicy(seed=1, kill_rate=1.0)
        report = run_shards(
            store, run, _double, jobs=1, policy=FAST, chaos=chaos
        )
        assert report.completed == 1 and report.worker_deaths == 0
        (event,) = store.events(run, kind="chaos-skip")
        assert "kill" in event.detail

    def test_transient_errors_still_injected_serially(self, store):
        run = _seed_run(store, n=1)
        chaos = ChaosPolicy(seed=1, error_rate=1.0)
        report = run_shards(
            store, run, _double, jobs=1, policy=FAST, chaos=chaos
        )
        assert report.retries == 1 and report.completed == 1


class TestInterruption:
    def test_max_shards_stops_early_and_resume_drains(self, store):
        run = _seed_run(store, n=3)
        first = run_shards(
            store, run, _double, jobs=1, policy=FAST, max_shards=1
        )
        assert first.completed == 1
        assert first.stopped_early and not first.drained
        assert first.remaining[ShardState.PENDING] == 2
        second = run_shards(store, run, _double, jobs=1, policy=FAST)
        assert second.completed == 2
        assert second.drained and not second.stopped_early
        assert store.results(run) == [{"value": 0}, {"value": 2}, {"value": 4}]

    def test_foreign_expired_lease_is_reclaimed(self, store):
        # Simulate a supervisor that died mid-lease: the shard sits
        # leased with an expiry in the past; a new session reclaims it.
        run = _seed_run(store, n=1)
        store.lease(run, now=0.0, timeout=0.0)  # expires immediately
        report = run_shards(store, run, _double, jobs=1, policy=FAST)
        assert report.releases == 1
        assert report.completed == 1
        assert len(store.events(run, kind="lease-expired")) == 1


class TestBackoff:
    def test_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=10.0, backoff_jitter=0.25)
        first = policy.backoff_delay("s0", 1)
        assert first == policy.backoff_delay("s0", 1)  # reproducible
        assert 0.1 <= first <= 0.1 * 1.25
        second = policy.backoff_delay("s0", 2)
        assert 0.2 <= second <= 0.2 * 1.25
        # jitter spreads shards apart
        assert policy.backoff_delay("s1", 1) != first

    def test_capped_at_backoff_max(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_max=2.0, backoff_jitter=0.0)
        assert policy.backoff_delay("s0", 9) == 2.0

    def test_lease_outlives_supervision_deadline(self):
        policy = RetryPolicy(timeout=60.0)
        assert policy.lease_timeout() > 60.0
        assert RetryPolicy(timeout=None).lease_timeout() > 0


class TestReport:
    def test_describe_mentions_failures(self, store):
        run = _seed_run(store, n=1)
        policy = RetryPolicy(
            max_attempts=1, timeout=5.0, backoff_base=0.01
        )
        report = run_shards(store, run, _boom, jobs=1, policy=policy)
        text = report.describe()
        assert "serial" in text and "1 failed" in text

    def test_to_json_roundtrips_counts(self, store):
        run = _seed_run(store, n=2)
        report = run_shards(store, run, _double, jobs=1, policy=FAST)
        payload = report.to_json()
        assert payload["completed"] == 2
        assert payload["remaining"][ShardState.DONE] == 2
