"""Tests for the sqlite job store's shard state machine.

The contract under test: every transition is atomic and guarded, so a
crashed or doubled supervisor can never double-claim a shard, overwrite
a completed result, or lose a retry.
"""

import pytest

from repro.jobs import JobStore, ShardState, StoreConflictError


@pytest.fixture
def store():
    with JobStore(":memory:") as js:
        yield js


def _seed_run(store, run_id="r", n=3):
    store.create_run(run_id, "test", {"n": n})
    store.add_shards(
        run_id, [(f"s{i}", {"i": i}) for i in range(n)]
    )
    return run_id


class TestRuns:
    def test_create_is_idempotent(self, store):
        store.create_run("r", "test", {"a": 1})
        store.create_run("r", "test", {"a": 1})  # no-op, no raise
        assert store.load_run("r") == ("test", {"a": 1})

    def test_spec_mismatch_rejected(self, store):
        store.create_run("r", "test", {"a": 1})
        with pytest.raises(StoreConflictError):
            store.create_run("r", "test", {"a": 2})

    def test_kind_mismatch_rejected(self, store):
        store.create_run("r", "test", {"a": 1})
        with pytest.raises(StoreConflictError):
            store.create_run("r", "other", {"a": 1})

    def test_unknown_run_raises(self, store):
        with pytest.raises(KeyError):
            store.load_run("nope")

    def test_run_ids_sorted(self, store):
        store.create_run("b", "test", {})
        store.create_run("a", "test", {})
        assert store.run_ids() == ["a", "b"]


class TestAddShards:
    def test_insert_and_seq_order(self, store):
        run = _seed_run(store)
        shards = store.shards(run)
        assert [s.shard_id for s in shards] == ["s0", "s1", "s2"]
        assert [s.seq for s in shards] == [0, 1, 2]
        assert all(s.state == ShardState.PENDING for s in shards)

    def test_resubmission_is_idempotent(self, store):
        run = _seed_run(store)
        inserted = store.add_shards(
            run, [("s1", {"i": 1}), ("s3", {"i": 3})]
        )
        assert inserted == 1  # only the genuinely new shard
        assert [s.seq for s in store.shards(run)] == [0, 1, 2, 3]

    def test_resubmission_never_disturbs_done(self, store):
        run = _seed_run(store)
        store.lease(run, now=0.0, timeout=10.0)
        store.complete(run, "s0", {"value": 7})
        store.add_shards(run, [("s0", {"i": 0})])
        assert store.get(run, "s0").state == ShardState.DONE
        assert store.get(run, "s0").result == {"value": 7}


class TestStateMachine:
    def test_lease_claims_in_seq_order(self, store):
        run = _seed_run(store)
        leased = store.lease(run, now=0.0, timeout=10.0, limit=2)
        assert [s.shard_id for s in leased] == ["s0", "s1"]
        assert all(s.state == ShardState.LEASED for s in leased)
        assert all(s.attempts == 1 for s in leased)
        assert all(s.lease_expires == 10.0 for s in leased)

    def test_leased_shard_cannot_be_leased_again(self, store):
        run = _seed_run(store, n=1)
        assert len(store.lease(run, now=0.0, timeout=10.0)) == 1
        assert store.lease(run, now=0.0, timeout=10.0) == []

    def test_backoff_gate_respected(self, store):
        run = _seed_run(store, n=1)
        store.lease(run, now=0.0, timeout=10.0)
        store.fail(run, "s0", "boom", retry_at=5.0)
        assert store.lease(run, now=4.9, timeout=10.0) == []
        again = store.lease(run, now=5.0, timeout=10.0)
        assert [s.shard_id for s in again] == ["s0"]
        assert again[0].attempts == 2

    def test_complete_requires_lease(self, store):
        run = _seed_run(store, n=1)
        assert not store.complete(run, "s0", {"v": 1})  # still pending
        store.lease(run, now=0.0, timeout=10.0)
        assert store.complete(run, "s0", {"v": 1})
        shard = store.get(run, "s0")
        assert shard.state == ShardState.DONE
        assert shard.result == {"v": 1}
        assert shard.lease_expires is None
        # completing twice is a no-op (guarded transition)
        assert not store.complete(run, "s0", {"v": 2})
        assert store.get(run, "s0").result == {"v": 1}

    def test_terminal_fail(self, store):
        run = _seed_run(store, n=1)
        store.lease(run, now=0.0, timeout=10.0)
        assert store.fail(run, "s0", "gave up", retry_at=None)
        shard = store.get(run, "s0")
        assert shard.state == ShardState.FAILED
        assert shard.error == "gave up"

    def test_fail_requires_lease(self, store):
        run = _seed_run(store, n=1)
        assert not store.fail(run, "s0", "boom", retry_at=None)
        assert store.get(run, "s0").state == ShardState.PENDING


class TestReleaseExpired:
    def test_releases_only_past_expiry(self, store):
        run = _seed_run(store, n=2)
        store.lease(run, now=0.0, timeout=10.0, limit=1)   # expires at 10
        store.lease(run, now=0.0, timeout=100.0, limit=1)  # expires at 100
        assert store.release_expired(run, now=9.0) == []
        assert store.release_expired(run, now=10.0) == ["s0"]
        shard = store.get(run, "s0")
        assert shard.state == ShardState.PENDING
        assert shard.lease_expires is None
        # the released shard keeps its attempt count (it *was* tried)
        assert shard.attempts == 1

    def test_released_shard_is_leasable_again(self, store):
        run = _seed_run(store, n=1)
        store.lease(run, now=0.0, timeout=1.0)
        store.release_expired(run, now=2.0)
        again = store.lease(run, now=2.0, timeout=10.0)
        assert [s.shard_id for s in again] == ["s0"]
        assert again[0].attempts == 2


class TestIntrospection:
    def test_results_in_seq_order_despite_completion_order(self, store):
        run = _seed_run(store)
        store.lease(run, now=0.0, timeout=10.0, limit=3)
        # complete out of order; results must come back in seq order
        store.complete(run, "s2", {"i": 2})
        store.complete(run, "s0", {"i": 0})
        store.complete(run, "s1", {"i": 1})
        assert store.results(run) == [{"i": 0}, {"i": 1}, {"i": 2}]

    def test_counts_cover_all_states(self, store):
        run = _seed_run(store)
        store.lease(run, now=0.0, timeout=10.0, limit=2)
        store.complete(run, "s0", {})
        store.fail(run, "s1", "boom", retry_at=None)
        assert store.counts(run) == {
            ShardState.PENDING: 1,
            ShardState.LEASED: 0,
            ShardState.DONE: 1,
            ShardState.FAILED: 1,
        }

    def test_next_not_before(self, store):
        run = _seed_run(store, n=2)
        store.lease(run, now=0.0, timeout=10.0, limit=2)
        store.fail(run, "s0", "boom", retry_at=7.0)
        store.fail(run, "s1", "boom", retry_at=3.0)
        assert store.next_not_before(run) == 3.0

    def test_next_not_before_none_without_pending(self, store):
        run = _seed_run(store, n=1)
        store.lease(run, now=0.0, timeout=10.0)
        store.complete(run, "s0", {})
        assert store.next_not_before(run) is None

    def test_get_unknown_shard_raises(self, store):
        run = _seed_run(store, n=1)
        with pytest.raises(KeyError):
            store.get(run, "missing")


class TestEvents:
    def test_recorded_in_order_and_filterable(self, store):
        run = _seed_run(store, n=1)
        store.record_event(run, "retry", "attempt 1", shard_id="s0")
        store.record_event(run, "timeout", "too slow", shard_id="s0")
        store.record_event(run, "retry", "attempt 2", shard_id="s0")
        kinds = [e.kind for e in store.events(run)]
        assert kinds == ["retry", "timeout", "retry"]
        retries = store.events(run, kind="retry")
        assert [e.detail for e in retries] == ["attempt 1", "attempt 2"]
        assert all(e.shard_id == "s0" for e in retries)

    def test_event_json(self, store):
        run = _seed_run(store, n=1)
        store.record_event(run, "serial-fallback", "spawn failed")
        (event,) = store.events(run)
        payload = event.to_json()
        assert payload["kind"] == "serial-fallback"
        assert payload["shard_id"] is None


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        with JobStore(path) as store:
            run = _seed_run(store)
            store.lease(run, now=0.0, timeout=10.0)
            store.complete(run, "s0", {"v": 1})
        with JobStore(path) as store:
            assert store.load_run("r") == ("test", {"n": 3})
            assert store.counts("r")[ShardState.DONE] == 1
            assert store.results("r") == [{"v": 1}]
