"""Chaos policy determinism and the crash-recover-converge drill.

The drill at the bottom is the PR's headline property, end to end: a
campaign run under chaos (real SIGKILLed workers), interrupted, then
resumed, produces a result bit-identical to an uninterrupted clean run
-- checked by :func:`repro.verify.diff_resumed`.
"""

import pytest

from repro.harness.campaign import Campaign, run_campaign, run_campaign_durable
from repro.jobs import ChaosError, ChaosPolicy, JobStore, RetryPolicy, apply_chaos
from repro.verify import diff_resumed

FAST = RetryPolicy(
    max_attempts=3, timeout=10.0, backoff_base=0.01, backoff_max=0.05
)

SMALL = Campaign(
    name="chaos-drill",
    n_values=(5,),
    points_per_spec=1,
    runs_per_point=3,
    seed=9,
    spec_names=("chaudhuri@mp-cr", "protocol-b@mp-cr"),
)


class TestChaosPolicy:
    def test_action_is_pure(self):
        policy = ChaosPolicy(seed=7, kill_rate=0.3, hang_rate=0.3,
                             error_rate=0.3)
        actions = [policy.action(f"s{i}", 1) for i in range(50)]
        assert actions == [policy.action(f"s{i}", 1) for i in range(50)]
        # with rates summing to 0.9 over 50 shards, both faulting and
        # clean draws must occur
        assert any(a is not None for a in actions)

    def test_seed_changes_schedule(self):
        a = ChaosPolicy(seed=1, kill_rate=0.5)
        b = ChaosPolicy(seed=2, kill_rate=0.5)
        assert [a.action(f"s{i}", 1) for i in range(30)] != [
            b.action(f"s{i}", 1) for i in range(30)
        ]

    def test_retries_run_clean_by_default(self):
        policy = ChaosPolicy(seed=1, error_rate=1.0)
        assert policy.action("s0", 1) == "error"
        assert policy.action("s0", 2) is None  # max_chaos_attempts=1

    def test_max_chaos_attempts_extends_sabotage(self):
        policy = ChaosPolicy(seed=1, error_rate=1.0, max_chaos_attempts=2)
        assert policy.action("s0", 2) == "error"
        assert policy.action("s0", 3) is None

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosPolicy(kill_rate=0.6, hang_rate=0.6)
        with pytest.raises(ValueError):
            ChaosPolicy(error_rate=-0.1)

    def test_inactive_policy(self):
        assert not ChaosPolicy().active
        assert ChaosPolicy(error_rate=0.1).active


class TestApplyChaos:
    def test_none_policy_is_noop(self):
        apply_chaos(None, "s0", 1)

    def test_error_raises_chaos_error(self):
        policy = ChaosPolicy(seed=1, error_rate=1.0)
        with pytest.raises(ChaosError, match="s0"):
            apply_chaos(policy, "s0", 1)

    def test_kill_skipped_in_process(self):
        # must NOT SIGKILL the test process
        policy = ChaosPolicy(seed=1, kill_rate=1.0)
        apply_chaos(policy, "s0", 1, in_process=True)

    def test_clean_attempt_passes_through(self):
        policy = ChaosPolicy(seed=1, error_rate=1.0)
        apply_chaos(policy, "s0", 2)  # attempt 2 is past the sabotage cap


class TestCrashRecoverConverge:
    def test_interrupted_chaos_run_resumes_bit_identical(self, tmp_path):
        chaos = ChaosPolicy(seed=3, kill_rate=0.4, error_rate=0.3)
        with JobStore(tmp_path / "jobs.sqlite") as store:
            # run under chaos and stop after one settled shard: this is
            # the interrupted run (some shards done, some pending)
            partial, first = run_campaign_durable(
                store, campaign=SMALL, jobs=2, policy=FAST, chaos=chaos,
                max_shards=1,
            )
            assert first.stopped_early
            assert len(partial.records) < 2
            # resume to completion (still under chaos)
            resumed, second = run_campaign_durable(
                store, run_id=SMALL.name, jobs=2, policy=FAST, chaos=chaos,
            )
            assert second.drained and not second.failed
        reference = run_campaign(SMALL)
        diff = diff_resumed(resumed, reference)
        assert diff.ok, diff.summary()
        assert "bit-identical" in diff.summary()

    def test_supervisor_kill_between_shards_is_resumable(self, tmp_path):
        # max_shards models the supervisor itself dying between shard
        # settlements (the store is consistent at every boundary).
        with JobStore(tmp_path / "jobs.sqlite") as store:
            for _ in range(10):  # one shard per "supervisor lifetime"
                _, report = run_campaign_durable(
                    store, campaign=SMALL, jobs=1, policy=FAST, max_shards=1,
                )
                if not report.stopped_early:
                    break
            result, final = run_campaign_durable(
                store, run_id=SMALL.name, jobs=1, policy=FAST
            )
            assert final.drained
        reference = run_campaign(SMALL)
        assert diff_resumed(result, reference).ok

    def test_execution_metadata_records_the_story(self, tmp_path):
        chaos = ChaosPolicy(seed=1, error_rate=1.0)
        with JobStore(tmp_path / "jobs.sqlite") as store:
            result, report = run_campaign_durable(
                store, campaign=SMALL, jobs=1, policy=FAST, chaos=chaos,
            )
        assert result.execution is not None
        assert result.execution["run_id"] == SMALL.name
        assert result.execution["supervisor"]["retries"] == report.retries > 0
        kinds = {e["kind"] for e in result.execution["events"]}
        assert "retry" in kinds
        assert result.execution["failed_shards"] == []
