"""Documentation-rot guards.

The markdown docs name modules, functions, protocol spec names, and CLI
subcommands.  These tests extract those references and verify each still
exists, so the documentation cannot silently drift from the code.
"""

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).parent.parent
DOC_FILES = [
    REPO / "README.md",
    REPO / "DESIGN.md",
    REPO / "docs" / "THEORY.md",
    REPO / "docs" / "PROTOCOLS.md",
    REPO / "docs" / "SIMULATOR.md",
    REPO / "docs" / "USAGE.md",
]

_MODULE_REF = re.compile(r"`(repro(?:\.[a-z_]+)+)(?:\.([A-Za-z_][A-Za-z0-9_]*))?`")
_SPEC_REF = re.compile(r"`([a-z0-9-]+@(?:mp|sm)-(?:cr|byz))`")
_CLI_REF = re.compile(r"python -m repro ([a-z][a-z-]*)")


def _doc_text():
    return {path: path.read_text() for path in DOC_FILES if path.exists()}


class TestDocFilesExist:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_exists_and_nonempty(self, path):
        assert path.exists(), path
        assert len(path.read_text()) > 200


class TestModuleReferences:
    def test_every_referenced_module_imports(self):
        failures = []
        for path, text in _doc_text().items():
            for match in _MODULE_REF.finditer(text):
                dotted, attr = match.group(1), match.group(2)
                try:
                    module = importlib.import_module(dotted)
                except ImportError:
                    # maybe the last component is actually an attribute
                    parent, _, leaf = dotted.rpartition(".")
                    try:
                        module = importlib.import_module(parent)
                        if not hasattr(module, leaf):
                            failures.append((path.name, dotted))
                        continue
                    except ImportError:
                        failures.append((path.name, dotted))
                        continue
                if attr and not hasattr(module, attr):
                    failures.append((path.name, f"{dotted}.{attr}"))
        assert not failures, failures


class TestSpecReferences:
    def test_every_referenced_spec_is_registered(self):
        from repro.protocols.base import all_specs

        known = {spec.name for spec in all_specs()}
        failures = []
        for path, text in _doc_text().items():
            for match in _SPEC_REF.finditer(text):
                if match.group(1) not in known:
                    failures.append((path.name, match.group(1)))
        assert not failures, failures


class TestCLIReferences:
    def test_every_referenced_subcommand_exists(self):
        from repro.cli import _DISPATCH

        failures = []
        for path, text in _doc_text().items():
            for match in _CLI_REF.finditer(text):
                subcommand = match.group(1)
                if subcommand in ("repro",):  # module invocations
                    continue
                if subcommand not in _DISPATCH:
                    failures.append((path.name, subcommand))
        assert not failures, failures


class TestLemmaReferences:
    def test_design_lemma_mentions_are_registered(self):
        from repro.core.lemmas import ALL_LEMMAS
        from repro.paper import LEMMA_INDEX

        known = {entry.lemma_id for entry in ALL_LEMMAS} | set(LEMMA_INDEX)
        text = (REPO / "DESIGN.md").read_text()
        mentioned = set(re.findall(r"Lemma \d\.\d+", text))
        unknown = {m for m in mentioned if m not in known}
        assert not unknown, unknown
