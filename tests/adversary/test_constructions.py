"""Tests for the executable impossibility-proof constructions.

Each construction must (a) exhibit the violation its lemma predicts, and
(b) do so at a point the solvability classifier marks IMPOSSIBLE (or, for
protocol-specific overload runs, outside the protocol's own region) --
tying the adversarial runs back to the analytic characterization.
"""

import pytest

from repro.adversary.constructions import (
    all_constructions,
    lemma_3_3_partition_run,
    lemma_3_5_crash_after_decide,
    lemma_3_6_subgroup_run,
    lemma_3_9_two_faced_run,
    lemma_3_10_value_lie,
    lemma_4_3_staged_run,
    lemma_4_8_sm_value_lie,
    lemma_4_9_register_lie,
    set_overflow_run,
)
from repro.core.solvability import Solvability, classify
from repro.core.validity import RV1, RV2, SV1, SV2, WV2
from repro.models import Model


class TestLemma33:
    def test_violates_agreement(self):
        result = lemma_3_3_partition_run()
        assert result.demonstrates_violation
        assert "agreement" in result.violated
        distinct = result.report.outcome.correct_decision_values()
        assert len(distinct) == result.report.problem.k + 1

    def test_point_is_impossible_for_wv2(self):
        result = lemma_3_3_partition_run()
        n = result.report.outcome.n
        verdict = classify(
            Model.MP_CR, WV2, n, result.report.problem.k, result.report.problem.t
        )
        assert verdict.status is Solvability.IMPOSSIBLE
        assert "Lemma 3.3" in verdict.citations

    def test_larger_k(self):
        result = lemma_3_3_partition_run(n=16, k=3)
        assert "agreement" in result.violated

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            lemma_3_3_partition_run(n=4, k=4)


class TestSetOverflow:
    def test_t_plus_one_values(self):
        result = set_overflow_run(n=6, k=2, t=2)
        assert "agreement" in result.violated
        assert len(result.report.outcome.correct_decision_values()) == 3

    def test_point_is_impossible_for_rv1(self):
        verdict = classify(Model.MP_CR, RV1, 6, 2, 2)
        assert verdict.status is Solvability.IMPOSSIBLE

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            set_overflow_run(n=4, k=3, t=2)


class TestLemma35:
    def test_sv1_violated(self):
        result = lemma_3_5_crash_after_decide()
        assert "validity" in result.violated
        # the decided value is the crashed process's input
        decided = set(result.report.outcome.correct_decision_values())
        assert decided == {"v0"}
        assert 0 in result.report.outcome.faulty

    def test_sv1_impossible_everywhere(self):
        verdict = classify(Model.MP_CR, SV1, 4, 2, 1)
        assert verdict.status is Solvability.IMPOSSIBLE


class TestLemma36:
    def test_many_subgroup_decisions(self):
        result = lemma_3_6_subgroup_run(n=9, k=2)
        assert "agreement" in result.violated
        assert len(result.report.outcome.correct_decision_values()) == 5

    def test_point_is_impossible_for_sv2(self):
        result = lemma_3_6_subgroup_run(n=9, k=2)
        t = result.report.problem.t
        verdict = classify(Model.MP_CR, SV2, 9, 2, t)
        assert verdict.status is Solvability.IMPOSSIBLE


class TestLemma39:
    def test_k_plus_one_groups(self):
        result = lemma_3_9_two_faced_run(n=9, k=2)
        assert "agreement" in result.violated
        assert len(result.report.outcome.correct_decision_values()) == 3

    def test_point_is_impossible_for_wv2_byz(self):
        result = lemma_3_9_two_faced_run(n=9, k=2)
        t = result.report.problem.t
        verdict = classify(Model.MP_BYZ, WV2, 9, 2, t)
        assert verdict.status is Solvability.IMPOSSIBLE


class TestLemma310:
    def test_fabricated_value_decided(self):
        result = lemma_3_10_value_lie()
        assert "validity" in result.violated
        assert set(result.report.outcome.correct_decision_values()) == {"a-lie"}

    def test_rv1_impossible_in_byzantine(self):
        verdict = classify(Model.MP_BYZ, RV1, 4, 2, 1)
        assert verdict.status is Solvability.IMPOSSIBLE
        assert "Lemma 3.10" in verdict.citations


class TestLemma43:
    def test_everyone_keeps_own_value(self):
        result = lemma_4_3_staged_run(n=4, k=2)
        assert "agreement" in result.violated
        assert len(result.report.outcome.correct_decision_values()) == 4

    def test_no_actual_failures_needed(self):
        result = lemma_4_3_staged_run()
        assert result.report.outcome.failure_free

    def test_scales(self):
        result = lemma_4_3_staged_run(n=6, k=2)
        assert "agreement" in result.violated

    def test_point_is_impossible(self):
        verdict = classify(Model.SM_CR, SV2, 4, 2, 2)
        assert verdict.status is Solvability.IMPOSSIBLE


class TestLemma48:
    def test_simulated_lie(self):
        result = lemma_4_8_sm_value_lie()
        assert "validity" in result.violated
        assert set(result.report.outcome.correct_decision_values()) == {"a-lie"}


class TestLemma49:
    def test_register_lie_breaks_rv2(self):
        result = lemma_4_9_register_lie()
        assert "validity" in result.violated

    def test_point_is_impossible(self):
        verdict = classify(Model.SM_BYZ, RV2, 4, 2, 2)
        assert verdict.status is Solvability.IMPOSSIBLE
        assert "Lemma 4.9" in verdict.citations


class TestAllConstructions:
    def test_every_construction_demonstrates_its_violation(self):
        for result in all_constructions():
            assert result.demonstrates_violation, result.summary()

    def test_summaries_mention_lemma(self):
        for result in all_constructions():
            assert result.lemma_id.startswith("Lemma")
            assert result.lemma_id.split()[1] in result.summary()


class TestLemma34:
    def test_protocol_d_overflow_below_region(self):
        from repro.adversary.constructions import lemma_3_4_wv1_overflow

        result = lemma_3_4_wv1_overflow()
        assert "agreement" in result.violated
        # t + 1 broadcasters, distinct inputs: t + 1 > k decisions
        t = result.report.problem.t
        assert len(result.report.outcome.correct_decision_values()) == t + 1

    def test_point_is_impossible_for_wv1(self):
        from repro.core.validity import WV1

        verdict = classify(Model.MP_CR, WV1, 5, 2, 2)
        assert verdict.status is Solvability.IMPOSSIBLE


class TestLemma311:
    def test_rv2_lie_breaks_protocol_a(self):
        from repro.adversary.constructions import lemma_3_11_rv2_lie

        result = lemma_3_11_rv2_lie()
        assert "validity" in result.violated
        # correct processes fell to the default despite unanimous inputs
        from repro.core.values import DEFAULT

        assert DEFAULT in result.report.outcome.correct_decision_values()

    def test_budget_matches_lemma_frontier(self):
        from repro.adversary.constructions import lemma_3_11_rv2_lie

        result = lemma_3_11_rv2_lie(n=9, k=2)
        # ceil(kn/(2(k+1))) = ceil(18/6) = 3
        assert result.report.problem.t == 3
        verdict = classify(Model.MP_BYZ, RV2, 9, 2, 3)
        assert verdict.status is Solvability.IMPOSSIBLE
        assert "Lemma 3.11" in verdict.citations
