"""Tests for first-violation forensics."""

from repro.adversary.constructions import (
    lemma_3_5_crash_after_decide,
    lemma_3_6_subgroup_run,
    set_overflow_run,
)
from repro.analysis.forensics import first_violation
from repro.core.validity import RV1, SV1, SV2
from repro.harness.runner import run_mp
from repro.protocols.chaudhuri import ChaudhuriKSet


class TestFirstViolation:
    def test_clean_run_has_no_violation(self):
        report = run_mp(
            [ChaudhuriKSet() for _ in range(4)],
            list("abcd"), k=3, t=2, validity=RV1,
        )
        assert first_violation(
            report.result.trace, report.outcome, 3, RV1
        ) is None

    def test_agreement_break_located(self):
        result = set_overflow_run(n=6, k=2, t=2)
        violation = first_violation(
            result.report.result.trace, result.report.outcome, 2, RV1
        )
        assert violation is not None
        assert violation.condition == "agreement"
        # the 3rd distinct decision is the tipping one
        assert "3 distinct" in violation.detail
        assert violation.tick <= result.report.result.ticks

    def test_validity_break_located(self):
        result = lemma_3_5_crash_after_decide()
        violation = first_violation(
            result.report.result.trace, result.report.outcome, 2, SV1
        )
        assert violation is not None
        assert violation.condition == "validity"
        assert violation.value == "v0"

    def test_tipping_process_identified(self):
        result = lemma_3_6_subgroup_run(n=9, k=2)
        violation = first_violation(
            result.report.result.trace, result.report.outcome, 2, SV2
        )
        assert violation is not None
        assert violation.condition == "agreement"
        # the tipping decision is by one of the correct subgroup members
        assert violation.pid in result.report.outcome.correct

    def test_faulty_decisions_ignored(self):
        from repro.core.problem import Outcome
        from repro.runtime.traces import Trace

        trace = Trace()
        trace.record(1, "decide", 0, payload="a")
        trace.record(2, "decide", 1, payload="b")  # faulty: ignored
        trace.record(3, "decide", 2, payload="c")
        outcome = Outcome(
            n=3,
            inputs={0: "a", 1: "b", 2: "c"},
            decisions={0: "a", 1: "b", 2: "c"},
            faulty=frozenset({1}),
        )
        violation = first_violation(trace, outcome, 1, RV1)
        assert violation is not None
        assert violation.pid == 2
        assert violation.tick == 3
