"""Tests for SVG figure rendering."""

import xml.etree.ElementTree as ET

from repro.analysis.svg import figure_svg, panel_svg
from repro.core.regions import region_map
from repro.core.solvability import Solvability
from repro.core.validity import RV1, RV2, SV1
from repro.models import Model

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestPanelSVG:
    def test_well_formed_xml(self):
        region = region_map(Model.MP_CR, RV1, 10)
        root = parse(panel_svg(region))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_cell_plus_frame(self):
        region = region_map(Model.MP_CR, RV1, 8)
        root = parse(panel_svg(region))
        rects = root.findall(f".//{SVG_NS}rect")
        # pattern backing rects (2) + cells + frame
        assert len(rects) == 2 + len(region.grid) + 1

    def test_fills_match_statuses(self):
        region = region_map(Model.MP_CR, SV1, 8)  # all impossible
        svg = panel_svg(region)
        assert 'fill="url(#brick)"' in svg
        assert 'fill="url(#honeycomb)"' not in svg

        region = region_map(Model.SM_CR, RV2, 8)  # all possible
        svg = panel_svg(region)
        assert 'fill="url(#honeycomb)"' in svg
        assert 'fill="url(#brick)"' not in svg

    def test_open_points_rendered_white(self):
        from repro.core.validity import WV2

        region = region_map(Model.MP_CR, WV2, 12)  # has isolated open points
        assert region.count(Solvability.OPEN) > 0
        svg = panel_svg(region)
        assert 'fill="#ffffff"' in svg

    def test_title_text(self):
        region = region_map(Model.MP_BYZ, RV1, 8)
        root = parse(panel_svg(region))
        texts = [el.text for el in root.findall(f".//{SVG_NS}text")]
        assert any("MP/Byz / RV1" in (t or "") for t in texts)


class TestFigureSVG:
    def test_six_panels(self):
        svg = figure_svg(Model.SM_CR, n=8)
        root = parse(svg)
        texts = [el.text or "" for el in root.findall(f".//{SVG_NS}text")]
        for code in ("SV1", "SV2", "RV1", "RV2", "WV1", "WV2"):
            assert any(f"/ {code} " in t for t in texts), code

    def test_custom_validities_and_layout(self):
        svg = figure_svg(Model.MP_CR, n=8, columns=3, validities=[RV1, RV2, SV1])
        root = parse(svg)
        assert root.get("width") is not None
        texts = [el.text or "" for el in root.findall(f".//{SVG_NS}text")]
        assert sum(1 for t in texts if "n = 8" in t) == 3
