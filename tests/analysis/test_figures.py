"""Tests for figure rendering and CSV export."""

from repro.analysis.figures import (
    FIGURE_BY_MODEL,
    panel_csv,
    render_figure,
    render_panel,
)
from repro.core.regions import region_map
from repro.core.validity import ALL_VALIDITY_CONDITIONS, RV1, SV1
from repro.models import Model


class TestRenderPanel:
    def test_contains_axes_and_legend(self):
        region = region_map(Model.MP_CR, RV1, 10)
        text = render_panel(region)
        assert "MP/CR / RV1" in text
        assert "legend" in text
        assert "t=  1" in text and "t= 10" in text

    def test_rv1_diagonal_shape(self):
        region = region_map(Model.MP_CR, RV1, 8)
        text = render_panel(region)
        rows = [line for line in text.splitlines() if line.startswith("t=")]
        # bottom row (t=1): k=2..7 all possible
        assert rows[-1].endswith("oooooo")
        # top row (t=8): all impossible
        assert rows[0].endswith("######")

    def test_sv1_all_bricks(self):
        region = region_map(Model.MP_CR, SV1, 8)
        text = render_panel(region)
        assert "o" not in text.split("legend")[1].replace("impossible", "").replace("open", "").replace("solvable", "").split("+")[0] or True
        rows = [line.split("|")[1] for line in text.splitlines() if "|" in line]
        assert all(set(row) == {"#"} for row in rows)

    def test_subsampling_wide_grids(self):
        region = region_map(Model.MP_CR, RV1, 40)
        text = render_panel(region, max_width=10)
        rows = [line.split("|")[1] for line in text.splitlines() if "|" in line]
        assert all(len(row) <= 20 for row in rows)


class TestRenderFigure:
    def test_all_models_have_figure_numbers(self):
        assert FIGURE_BY_MODEL[Model.MP_CR] == 2
        assert FIGURE_BY_MODEL[Model.MP_BYZ] == 4
        assert FIGURE_BY_MODEL[Model.SM_CR] == 5
        assert FIGURE_BY_MODEL[Model.SM_BYZ] == 6

    def test_six_panels(self):
        text = render_figure(Model.SM_CR, n=12)
        for condition in ALL_VALIDITY_CONDITIONS:
            assert f"/ {condition.code} " in text

    def test_counts_line_present(self):
        text = render_figure(Model.MP_CR, n=10, validities=[RV1])
        assert "counts:" in text
        assert "Lemma 3.1" in text


class TestPanelCSV:
    def test_header_and_rows(self):
        region = region_map(Model.MP_CR, RV1, 8)
        csv = panel_csv(region)
        lines = csv.strip().splitlines()
        assert lines[0] == "k,max_possible_t,min_impossible_t,open_count"
        assert len(lines) == 1 + len(region.k_values)
        # k=3 row: possible up to 2, impossible from 3
        assert "3,2,3,0" in lines
