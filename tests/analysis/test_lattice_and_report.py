"""Tests for lattice verification and report generation."""

import random

from repro.analysis.lattice import (
    LatticeCheck,
    random_outcome,
    render_lattice,
    verify_lattice,
)
from repro.analysis.report import (
    constructions_for_model,
    figure_section,
    sample_solvable_points,
    validate_figure,
)
from repro.models import Model
from repro.protocols.base import get_spec


class TestLattice:
    def test_render_mentions_all_conditions(self):
        text = render_lattice()
        for code in ("SV1", "SV2", "RV1", "RV2", "WV1", "WV2"):
            assert code in text

    def test_random_outcome_is_valid(self):
        rng = random.Random(1)
        for _ in range(50):
            outcome = random_outcome(rng)
            assert 2 <= outcome.n <= 8
            assert set(outcome.inputs) == set(range(outcome.n))

    def test_verification_passes(self):
        check = verify_lattice(samples=1500, seed=3)
        assert check.ok
        assert check.samples == 1500

    def test_verification_detects_corrupt_lattice(self):
        """If an implication were claimed that does not hold, violations
        would surface; simulate by checking a reversed pair manually."""
        rng = random.Random(0)
        from repro.core.validity import RV1, SV2

        # find an outcome where SV2 holds but RV1 does not (they are
        # incomparable, so one must exist)
        found = False
        for _ in range(2000):
            outcome = random_outcome(rng)
            if SV2.check(outcome) and not RV1.check(outcome):
                found = True
                break
        assert found


class TestSampling:
    def test_points_inside_region(self):
        spec = get_spec("protocol-b@mp-cr")
        rng = random.Random(0)
        points = sample_solvable_points(spec, 9, 4, rng)
        assert points
        for (k, t) in points:
            assert spec.solvable(9, k, t)

    def test_includes_frontier_extremes(self):
        spec = get_spec("chaudhuri@mp-cr")
        rng = random.Random(0)
        points = sample_solvable_points(spec, 8, 3, rng)
        # max solvable t overall is (k, t) = (7, 6)
        assert (7, 6) in points

    def test_empty_region_gives_no_points(self):
        spec = get_spec("trivial@mp-cr")  # only k >= n, outside 2..n-1
        rng = random.Random(0)
        assert sample_solvable_points(spec, 8, 3, rng) == []


class TestValidateFigure:
    def test_small_validation_is_clean(self):
        validation = validate_figure(
            Model.MP_CR, n_empirical=6, points_per_spec=1, runs_per_point=5,
            seed=1,
        )
        assert validation.possible_side_clean
        assert validation.impossible_side_demonstrated
        assert validation.ok

    def test_engine_threads_through_to_sweeps(self):
        """``engine="auto"`` reaches every grid point; each sweep records
        which engine actually ran (batch where supported, else a scalar
        fallback with a machine-readable reason)."""
        validation = validate_figure(
            Model.MP_CR, n_empirical=6, points_per_spec=1, runs_per_point=4,
            seed=1, engine="auto",
        )
        assert validation.ok
        assert validation.sweeps
        for sweep in validation.sweeps:
            assert sweep.engine in ("batch", "scalar")
            assert sweep.execution
            if sweep.engine == "scalar":
                assert sweep.fallback_reason
        assert any(s.engine == "batch" for s in validation.sweeps)

    def test_engine_threads_through_parallel_map(self):
        """The task tuples stay picklable with the engine field."""
        serial = validate_figure(
            Model.MP_CR, n_empirical=6, points_per_spec=1, runs_per_point=4,
            seed=1, engine="auto", jobs=1,
        )
        fanned = validate_figure(
            Model.MP_CR, n_empirical=6, points_per_spec=1, runs_per_point=4,
            seed=1, engine="auto", jobs=2,
        )
        assert [s.summary() for s in serial.sweeps] == [
            s.summary() for s in fanned.sweeps
        ]
        assert [s.engine for s in serial.sweeps] == [
            s.engine for s in fanned.sweeps
        ]

    def test_constructions_per_model_nonempty(self):
        for model in Model:
            results = constructions_for_model(model)
            assert results
            for result in results:
                assert result.demonstrates_violation


class TestFigureSection:
    def test_markdown_structure(self):
        text = figure_section(Model.MP_CR, n_analytic=16)
        assert text.startswith("## Fig. 2")
        assert "| validity |" in text
        assert "SV1" in text and "WV2" in text
