"""Tests for the complexity measurement module."""

from repro.analysis.complexity import (
    ComplexityPoint,
    ComplexitySeries,
    growth_exponent,
    measure_mp_protocol,
    measure_sm_protocol,
)
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_e import protocol_e


class TestGrowthExponent:
    def series(self, costs_by_n):
        return ComplexitySeries(
            label="x",
            points=tuple(
                ComplexityPoint(n=n, t=1, cost=c, ticks=0)
                for n, c in costs_by_n
            ),
        )

    def test_quadratic(self):
        series = self.series([(4, 16), (8, 64), (16, 256)])
        assert abs(growth_exponent(series) - 2.0) < 1e-9

    def test_cubic(self):
        series = self.series([(4, 64), (8, 512), (16, 4096)])
        assert abs(growth_exponent(series) - 3.0) < 1e-9

    def test_constant(self):
        series = self.series([(4, 7), (8, 7), (16, 7)])
        assert abs(growth_exponent(series)) < 1e-9

    def test_single_point_is_zero(self):
        series = self.series([(4, 10)])
        assert growth_exponent(series) == 0.0


class TestMeasurement:
    def test_protocol_a_messages_exact(self):
        series = measure_mp_protocol(
            "A", lambda n, t: ProtocolA(),
            lambda n, t: 2, lambda n: 1, ns=(4, 6), validity_code="RV2",
        )
        assert [p.cost for p in series.points] == [16, 36]

    def test_protocol_e_ops_linear_per_process(self):
        series = measure_sm_protocol(
            "E", lambda n, t: protocol_e,
            lambda n, t: 2, lambda n: n, ns=(4, 6), validity_code="RV2",
        )
        # n writes + n*n reads
        assert [p.cost for p in series.points] == [4 + 16, 6 + 36]

    def test_table_renders(self):
        series = measure_mp_protocol(
            "A", lambda n, t: ProtocolA(),
            lambda n, t: 2, lambda n: 1, ns=(4,), validity_code="RV2",
        )
        text = series.table()
        assert "n=  4" in text and "exponent" in text
