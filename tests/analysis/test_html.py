"""Tests for the HTML report generator."""

from repro.analysis.html import build_html_report


class TestHTMLReport:
    def build(self):
        # small parameters keep the test fast; the structure is the same
        return build_html_report(n_analytic=10, campaign_runs=2, seed=1)

    def test_document_structure(self):
        content = self.build()
        assert content.startswith("<!DOCTYPE html>")
        assert content.rstrip().endswith("</html>")
        assert "<title>" in content

    def test_all_figures_embedded(self):
        content = self.build()
        for fig in ("Fig. 1", "Fig. 2", "Fig. 4", "Fig. 5", "Fig. 6"):
            assert fig in content
        assert content.count("<svg") == 4  # one per model figure

    def test_lattice_verified(self):
        content = self.build()
        assert "verified" in content
        assert "FAILED" not in content

    def test_sweeps_clean(self):
        content = self.build()
        assert "all sweeps violation-free" in content
        assert "violations found!" not in content

    def test_constructions_listed(self):
        content = self.build()
        assert "Lemma 3.3" in content
        assert "NO VIOLATION" not in content

    def test_summary_included(self):
        content = self.build()
        assert "Section 2.1" in content
        assert "Z(n, t)" in content
