"""Tests for space-time diagram rendering."""

from repro.adversary.constructions import (
    lemma_3_5_crash_after_decide,
    lemma_4_3_staged_run,
)
from repro.analysis.spacetime import render_spacetime
from repro.core.validity import RV1
from repro.harness.runner import run_mp
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.runtime.traces import Trace


class TestRenderSpacetime:
    def run_sample(self):
        return run_mp(
            [ChaudhuriKSet() for _ in range(3)],
            ["a", "b", "c"], k=2, t=1, validity=RV1,
        )

    def test_contains_key_events(self):
        report = self.run_sample()
        text = render_spacetime(report.result.trace, 3)
        assert "bcast" in text
        assert "DECIDE" in text
        assert "<-p" in text

    def test_header_lists_processes(self):
        report = self.run_sample()
        text = render_spacetime(report.result.trace, 3)
        header = text.splitlines()[0]
        for pid in range(3):
            assert f"p{pid}" in header

    def test_pid_filter(self):
        report = self.run_sample()
        text = render_spacetime(report.result.trace, 3, pids=[1])
        header = text.splitlines()[0]
        assert "p1" in header and "p0" not in header

    def test_crash_shown(self):
        result = lemma_3_5_crash_after_decide()
        text = render_spacetime(result.report.result.trace, 4)
        assert "CRASH" in text

    def test_sm_ops_shown(self):
        result = lemma_4_3_staged_run()
        text = render_spacetime(result.report.result.trace, 4)
        assert "wr " in text and "rd[" in text

    def test_truncation(self):
        report = self.run_sample()
        text = render_spacetime(report.result.trace, 3, max_rows=2)
        assert "more rows" in text

    def test_uncollapsed_sends(self):
        report = self.run_sample()
        text = render_spacetime(
            report.result.trace, 3, collapse_sends=False
        )
        assert "->p" in text
        assert "bcast" not in text

    def test_empty_trace(self):
        assert "tick" in render_spacetime(Trace(), 2)

    def test_long_payloads_truncated(self):
        trace = Trace()
        trace.record(0, "send", 0, 1, ("TAG", "x" * 50))
        text = render_spacetime(trace, 2, collapse_sends=False)
        assert "~" in text
        assert "x" * 30 not in text
