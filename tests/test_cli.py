"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestClassify:
    def test_possible_point(self, capsys):
        code = main([
            "classify", "--model", "MP/CR", "--validity", "RV1",
            "--n", "64", "--k", "5", "--t", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "possible" in out
        assert "Lemma 3.1" in out

    def test_note_printed_for_degenerate(self, capsys):
        main([
            "classify", "--model", "MP/CR", "--validity", "RV1",
            "--n", "8", "--k", "8", "--t", "3",
        ])
        out = capsys.readouterr().out
        assert "note:" in out


class TestPanel:
    def test_text_panel(self, capsys):
        assert main([
            "panel", "--model", "SM/CR", "--validity", "RV2", "--n", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "SM/CR / RV2" in out
        assert "o" in out

    def test_csv_panel(self, capsys):
        assert main([
            "panel", "--model", "MP/CR", "--validity", "RV1",
            "--n", "8", "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("k,max_possible_t")


class TestFigure:
    def test_small_figure(self, capsys):
        assert main(["figure", "--model", "MP/Byz", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert out.count("n = 12") >= 6


class TestLattice:
    def test_renders_and_verifies(self, capsys):
        assert main(["lattice"]) == 0
        out = capsys.readouterr().out
        assert "SV1" in out and "OK" in out


class TestRun:
    def test_successful_run(self, capsys):
        assert main([
            "run", "chaudhuri@mp-cr", "--n", "5", "--k", "3", "--t", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "decisions:" in out and "OK" in out

    def test_explicit_inputs(self, capsys):
        assert main([
            "run", "protocol-a@mp-cr", "--n", "3", "--k", "2", "--t", "1",
            "--inputs", "x", "x", "x",
        ]) == 0
        out = capsys.readouterr().out
        assert "'x'" in out

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            main(["run", "nope", "--n", "3", "--k", "2", "--t", "1"])


class TestSweep:
    def test_clean_sweep_exit_zero(self, capsys):
        assert main([
            "sweep", "protocol-e@sm-cr", "--n", "5", "--k", "2", "--t", "5",
            "--runs", "6",
        ]) == 0
        assert "clean" in capsys.readouterr().out


class TestAttack:
    def test_attack_inside_region(self, capsys):
        assert main([
            "attack", "chaudhuri@mp-cr", "--n", "5", "--k", "3", "--t", "2",
            "--attempts", "15",
        ]) == 0
        assert "no violation" in capsys.readouterr().out


class TestConstruct:
    def test_single_lemma(self, capsys):
        assert main(["construct", "--lemma", "Lemma 3.5"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "Lemma 3.5" in out


class TestProtocols:
    def test_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "chaudhuri@mp-cr" in out
        assert "protocol-f@sm-byz" in out


class TestPaperAndSummary:
    def test_paper_index(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "PROTOCOL D" in out and "Lemma 3.16" in out

    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "MP/Byz" in out and "gap: substantial" in out


class TestSVGCommand:
    def test_panel_file_written(self, tmp_path, capsys):
        out = tmp_path / "panel.svg"
        assert main([
            "svg", "--model", "SM/CR", "--validity", "RV2",
            "--n", "10", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert "<svg" in out.read_text()

    def test_full_figure(self, tmp_path, capsys):
        out = tmp_path / "fig.svg"
        assert main([
            "svg", "--model", "MP/CR", "--n", "8", "--out", str(out),
            "--full-figure",
        ]) == 0
        assert "WV2" in out.read_text()


class TestTraceCommand:
    def test_protocol_trace(self, capsys):
        assert main([
            "trace", "chaudhuri@mp-cr", "--n", "4", "--k", "2", "--t", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "DECIDE" in out

    def test_construction_trace(self, capsys):
        assert main(["trace", "--lemma", "Lemma 3.5"]) == 0
        out = capsys.readouterr().out
        assert "CRASH" in out

    def test_unknown_lemma(self, capsys):
        assert main(["trace", "--lemma", "Lemma 9.9"]) == 1

    def test_missing_spec(self, capsys):
        assert main(["trace"]) == 2


class TestExhaustiveCommand:
    def test_clean_instance(self, capsys):
        assert main([
            "exhaustive", "protocol-a@mp-cr", "--n", "3", "--k", "2",
            "--t", "1", "--inputs", "v", "v", "w",
        ]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "violations: 0" in out

    def test_sm_spec_explored(self, capsys):
        assert main([
            "exhaustive", "protocol-e@sm-cr", "--n", "2", "--k", "2",
            "--t", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "violations: 0" in out
        assert "prefix sharing" in out  # replay-based SM snapshots

    def test_sm_spec_rejects_deepcopy_engine(self, capsys):
        assert main([
            "exhaustive", "protocol-e@sm-cr", "--n", "2", "--k", "2",
            "--t", "2", "--engine", "deepcopy",
        ]) == 2


class TestCampaignCommand:
    def test_small_campaign(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main([
            "campaign", "--name", "cli-test", "--n", "5",
            "--points", "1", "--runs", "2", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert "clean" in capsys.readouterr().out


class TestDurableCampaignCommand:
    ARGS = [
        "--name", "cli-durable", "--specs", "chaudhuri@mp-cr",
        "protocol-b@mp-cr", "--n", "5", "--points", "1", "--runs", "2",
        "--seed", "7", "--backoff", "0.01",
    ]

    def test_durable_run_reports_execution(self, tmp_path, capsys):
        store = tmp_path / "jobs.sqlite"
        assert main([
            "campaign", *self.ARGS, "--store", str(store),
        ]) == 0
        out = capsys.readouterr().out
        assert "execution:" in out
        assert "shards completed" in out

    def test_interrupt_resume_diff_cycle(self, tmp_path, capsys):
        # the CI chaos drill, in miniature: chaos-interrupted run (exit
        # 3), resume to completion, diff against a fresh clean run
        store = tmp_path / "jobs.sqlite"
        resumed = tmp_path / "resumed.json"
        fresh = tmp_path / "fresh.json"
        assert main([
            "campaign", *self.ARGS, "--store", str(store),
            "--jobs", "2", "--chaos-kill", "0.5", "--chaos-seed", "3",
            "--max-shards", "1", "--out", str(resumed),
        ]) == 3
        out = capsys.readouterr().out
        assert "INCOMPLETE" in out and "--resume cli-durable" in out
        assert main([
            "campaign", "--resume", "cli-durable", "--store", str(store),
            "--backoff", "0.01", "--out", str(resumed),
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", *self.ARGS, "--out", str(fresh)]) == 0
        capsys.readouterr()
        assert main(["diff-resumed", str(resumed), str(fresh)]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_diff_resumed_detects_divergence(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["campaign", *self.ARGS, "--out", str(a)]) == 0
        assert main([
            "campaign", "--name", "cli-durable", "--specs",
            "chaudhuri@mp-cr", "protocol-b@mp-cr", "--n", "5",
            "--points", "1", "--runs", "2", "--seed", "8",
            "--out", str(b),
        ]) == 0
        capsys.readouterr()
        assert main(["diff-resumed", str(a), str(b)]) == 1

    def test_resume_requires_store(self, capsys):
        assert main(["campaign", "--resume", "x"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_resume_unknown_run_exit_two(self, tmp_path, capsys):
        store = tmp_path / "jobs.sqlite"
        assert main([
            "campaign", "--resume", "ghost", "--store", str(store),
        ]) == 2
        assert "cannot resume" in capsys.readouterr().err


class TestRecommendAndSolve:
    def test_recommend_lists_candidates(self, capsys):
        assert main([
            "recommend", "--model", "SM/CR", "--validity", "SV2",
            "--n", "12", "--k", "6", "--t", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "protocol-f@sm-cr" in out

    def test_recommend_open_point(self, capsys):
        assert main([
            "recommend", "--model", "MP/CR", "--validity", "SV2",
            "--n", "16", "--k", "2", "--t", "5",
        ]) == 1
        assert "open problem" in capsys.readouterr().out

    def test_solve_end_to_end(self, capsys):
        assert main([
            "solve", "--model", "MP/CR", "--validity", "RV1",
            "--n", "5", "--k", "3", "--t", "2",
        ]) == 0
        assert "OK" in capsys.readouterr().out

    def test_solve_impossible(self, capsys):
        assert main([
            "solve", "--model", "MP/Byz", "--validity", "RV1",
            "--n", "5", "--k", "3", "--t", "2",
        ]) == 1
        assert "impossible" in capsys.readouterr().out


class TestVerifyFlag:
    """`--verify` runs the oracle stack on top of the normal verdicts."""

    def test_run_verify(self, capsys):
        code = main([
            "run", "protocol-b@mp-cr",
            "--n", "5", "--k", "3", "--t", "1", "--verify",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_sweep_verify(self, capsys):
        code = main([
            "sweep", "chaudhuri@mp-cr",
            "--n", "5", "--k", "2", "--t", "1", "--runs", "4", "--verify",
        ])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exhaustive_verify(self, capsys):
        code = main([
            "exhaustive", "protocol-b@mp-cr",
            "--n", "3", "--k", "2", "--t", "0",
            "--max-states", "6000", "--verify",
        ])
        assert code == 0
        assert "violations: 0" in capsys.readouterr().out

    def test_attack_verify_and_witness(self, capsys, tmp_path):
        path = tmp_path / "witness.json"
        code = main([
            "attack", "protocol-b@mp-cr",
            "--n", "5", "--k", "3", "--t", "1",
            "--attempts", "4", "--verify", "--save-witness", str(path),
        ])
        assert code == 0
        assert path.exists()
        assert "witness" in capsys.readouterr().out

    def test_attack_witness_refused_for_byzantine_attempts(
        self, capsys, tmp_path
    ):
        path = tmp_path / "witness.json"
        code = main([
            "attack", "protocol-d@mp-byz",
            "--n", "7", "--k", "2", "--t", "1",
            "--attempts", "6", "--seed", "2", "--save-witness", str(path),
        ])
        out = capsys.readouterr().out
        if code == 2:
            assert "cannot save witness" in out
        else:
            assert path.exists()


class TestVerifyRun:
    def test_round_trip_through_attack(self, capsys, tmp_path):
        path = tmp_path / "witness.json"
        assert main([
            "attack", "protocol-b@mp-cr",
            "--n", "5", "--k", "3", "--t", "1",
            "--attempts", "3", "--save-witness", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["verify-run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "replay deterministic" in out

    def test_missing_file_exit_two(self, capsys, tmp_path):
        assert main(["verify-run", str(tmp_path / "absent.json")]) == 2
        assert "cannot load witness" in capsys.readouterr().out
