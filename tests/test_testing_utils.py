"""Tests for the downstream testing utilities."""

import pytest

from repro.core.problem import Outcome
from repro.testing import (
    assert_outcome_satisfies,
    assert_protocol_clean,
    random_outcomes,
)


class TestAssertProtocolClean:
    def test_passes_inside_region(self):
        assert_protocol_clean("chaudhuri@mp-cr", n=5, k=3, t=2, runs=4)

    def test_rejects_points_outside_region(self):
        with pytest.raises(AssertionError, match="outside"):
            assert_protocol_clean("chaudhuri@mp-cr", n=5, k=3, t=3, runs=2)

    def test_custom_patterns(self):
        assert_protocol_clean(
            "protocol-e@sm-cr", n=4, k=2, t=4, runs=4,
            input_patterns=("unanimous",),
        )


class TestAssertOutcomeSatisfies:
    def outcome(self, decisions):
        return Outcome(
            n=3,
            inputs={0: "a", 1: "a", 2: "b"},
            decisions=decisions,
            faulty=frozenset(),
        )

    def test_good_outcome(self):
        assert_outcome_satisfies(
            self.outcome({0: "a", 1: "a", 2: "a"}), k=2, t=0, validity="RV1"
        )

    def test_bad_agreement(self):
        with pytest.raises(AssertionError, match="agreement"):
            assert_outcome_satisfies(
                self.outcome({0: "a", 1: "b", 2: "a"}), k=1, t=0,
                validity="RV1",
            )

    def test_bad_termination(self):
        with pytest.raises(AssertionError, match="termination"):
            assert_outcome_satisfies(
                self.outcome({0: "a"}), k=2, t=0, validity="RV1"
            )


class TestRandomOutcomes:
    def test_count_and_determinism(self):
        first = [o.inputs for o in random_outcomes(5, seed=1)]
        second = [o.inputs for o in random_outcomes(5, seed=1)]
        assert len(first) == 5
        assert first == second

    def test_seed_changes_stream(self):
        a = [o.inputs for o in random_outcomes(5, seed=1)]
        b = [o.inputs for o in random_outcomes(5, seed=2)]
        assert a != b
