"""Tests for the MP -> SM SIMULATION transform (Section 4)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validity import RV1, SV2, WV1
from repro.core.lemmas import z_function
from repro.failures.byzantine import MultiFaceProcess, MuteProcess
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.runner import run_sm
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_c import ProtocolC, best_ell
from repro.protocols.protocol_d import ProtocolD
from repro.protocols.simulation import simulate_mp_over_sm
from repro.shm.ops import Write
from repro.shm.schedulers import RandomProcessScheduler


class TestSimulatedChaudhuri:
    def test_lemma_4_4_basic(self):
        n, k, t = 5, 3, 2
        report = run_sm(
            [simulate_mp_over_sm(ChaudhuriKSet)] * n,
            [f"v{i}" for i in range(n)],
            k, t, RV1,
        )
        assert report.ok

    def test_with_crashes(self):
        n, k, t = 5, 3, 2
        report = run_sm(
            [simulate_mp_over_sm(ChaudhuriKSet)] * n,
            [f"v{i}" for i in range(n)],
            k, t, RV1,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_steps=3),
            }),
        )
        assert report.ok

    def test_random_interleavings(self):
        n, k, t = 5, 3, 2
        for seed in range(8):
            report = run_sm(
                [simulate_mp_over_sm(ChaudhuriKSet)] * n,
                [f"v{i}" for i in range(n)],
                k, t, RV1,
                scheduler=RandomProcessScheduler(seed),
            )
            assert report.ok, report.summary()


class TestSimulatedProtocolB:
    def test_lemma_4_6(self):
        n, k, t = 7, 4, 2
        report = run_sm(
            [simulate_mp_over_sm(ProtocolB)] * n,
            ["v"] * n, k, t, SV2,
        )
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}


class TestSimulatedProtocolC:
    def test_lemma_4_11_with_byzantine_writer(self):
        n, k, t = 7, 4, 1
        ell = best_ell(n, k, t)
        assert ell is not None

        def junk_program(ctx):
            # Byzantine register content: malformed log entries.
            yield Write("not a log")
            yield Write((("bad", "entry"), 17, ("x",)))

        programs = [simulate_mp_over_sm(lambda: ProtocolC(ell))] * (n - 1) + [
            junk_program
        ]
        report = run_sm(
            programs, ["v"] * n, k, t, SV2, byzantine=[n - 1],
        )
        assert report.ok
        for pid in range(n - 1):
            assert report.outcome.decisions[pid] == "v"

    def test_byzantine_log_rewriting_equivocation(self):
        """A Byzantine simulated process can rewrite its log between
        readers -- the SM equivalent of equivocation; SV2 must survive."""
        n, k, t = 7, 4, 1
        ell = best_ell(n, k, t)

        def equivocating_log(ctx):
            log_a = tuple((dst, ("EC-INIT", "x")) for dst in range(ctx.n))
            log_b = tuple((dst, ("EC-INIT", "y")) for dst in range(ctx.n))
            for _ in range(30):
                yield Write(log_a)
                yield Write(log_b)

        programs = [simulate_mp_over_sm(lambda: ProtocolC(ell))] * (n - 1) + [
            equivocating_log
        ]
        for seed in range(5):
            report = run_sm(
                programs, ["v"] * n, k, t, SV2, byzantine=[n - 1],
                scheduler=RandomProcessScheduler(seed),
            )
            assert report.ok, report.summary()


class TestSimulatedProtocolD:
    def test_lemma_4_13(self):
        n, t = 7, 2
        k = z_function(n, t)
        report = run_sm(
            [simulate_mp_over_sm(ProtocolD)] * n,
            [f"v{i}" for i in range(n)],
            k, t, WV1,
        )
        assert report.ok

    def test_with_mute_byzantine(self):
        n, t = 7, 2
        k = z_function(n, t)

        def silent(ctx):
            return
            yield

        programs = [simulate_mp_over_sm(ProtocolD)] * (n - 1) + [silent]
        report = run_sm(
            programs, [f"v{i}" for i in range(n)], k, t, WV1,
            byzantine=[n - 1],
        )
        assert report.verdicts["termination"]
        assert report.verdicts["agreement"]


class TestLogSemantics:
    def test_each_message_consumed_once(self):
        """Log shrinkage or rewrites of consumed prefixes are ignored."""
        n, k, t = 4, 3, 1

        counted = []

        class CountingProcess(ChaudhuriKSet):
            def on_message(self, ctx, sender, payload):
                counted.append((ctx.pid, sender, payload))
                super().on_message(ctx, sender, payload)

        report = run_sm(
            [simulate_mp_over_sm(CountingProcess)] * n,
            [f"v{i}" for i in range(n)],
            k, t, RV1,
        )
        assert report.ok
        assert len(counted) == len(set(counted))  # no duplicate delivery


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_property_simulation_preserves_rv1(seed):
    rng = random.Random(seed)
    n = rng.randint(4, 7)
    k = rng.randint(2, n - 1)
    t = rng.randint(1, k - 1)
    inputs = [rng.choice("abcd") for _ in range(n)]
    report = run_sm(
        [simulate_mp_over_sm(ChaudhuriKSet)] * n,
        inputs, k, t, RV1,
        scheduler=RandomProcessScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed),
    )
    assert report.ok, report.summary()


class TestLogRewritingEdgeCases:
    def test_shrinking_log_never_reconsumed(self):
        """A Byzantine owner shrinks its log below the consumed prefix and
        regrows it with different content; readers must not act twice."""
        from repro.core.validity import SV2
        from repro.protocols.protocol_c import ProtocolC

        n, k, t = 7, 4, 1
        counted = []

        class CountingC(ProtocolC):
            def on_message(self, ctx, sender, payload):
                if sender == n - 1:
                    counted.append((ctx.pid, payload))
                super().on_message(ctx, sender, payload)

        def shrink_regrow(ctx):
            long_log = tuple(
                (dst, ("EC-INIT", "x")) for dst in range(ctx.n)
            )
            for _ in range(20):
                yield Write(long_log)
                yield Write(())  # shrink below everyone's consumed prefix
                yield Write(tuple(
                    (dst, ("EC-INIT", "y")) for dst in range(ctx.n)
                ))

        programs = [simulate_mp_over_sm(lambda: CountingC(1))] * (n - 1) + [
            shrink_regrow
        ]
        report = run_sm(
            programs, ["v"] * n, k, t, SV2, byzantine=[n - 1],
            scheduler=RandomProcessScheduler(3),
        )
        assert report.ok, report.summary()
        # each reader consumed at most one entry addressed to it per
        # length-position of the byz log: never both "x" and "y" at the
        # same index from a shrink/regrow cycle beyond log growth
        per_reader = {}
        for pid, payload in counted:
            per_reader.setdefault(pid, []).append(payload)
        for pid, payloads in per_reader.items():
            # consumed prefix only ever grows: at most n entries consumed
            assert len(payloads) <= n, (pid, payloads)

    def test_non_tuple_log_ignored(self):
        from repro.core.validity import RV1

        def junk_owner(ctx):
            for value in (42, "text", None, 3.14):
                yield Write(value)

        n, k, t = 4, 3, 1
        programs = [simulate_mp_over_sm(ChaudhuriKSet)] * (n - 1) + [junk_owner]
        report = run_sm(
            programs, ["a", "b", "c", "junk"], k, t, RV1, byzantine=[n - 1],
        )
        assert report.verdicts["termination"]
        assert report.verdicts["agreement"]

    def test_malformed_entries_skipped(self):
        from repro.core.validity import RV1

        def half_valid_owner(ctx):
            log = (
                "not an entry",
                (0,),                         # wrong arity
                ("zero", ("CH-VAL", "z")),    # non-int dst
                (1, ("CH-VAL", "a-lie")),     # valid entry for p1
            )
            yield Write(log)

        n, k, t = 4, 3, 1
        programs = [simulate_mp_over_sm(ChaudhuriKSet)] * (n - 1) + [
            half_valid_owner
        ]
        report = run_sm(
            programs, ["b", "c", "d", "x"], k, t, RV1, byzantine=[n - 1],
        )
        assert report.verdicts["termination"]
