"""Tests for PROTOCOL F (Lemmas 4.7 and 4.12)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import DEFAULT
from repro.core.validity import SV2
from repro.failures.byzantine_sm import garbage_writer, with_fake_input
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.runner import run_sm
from repro.shm.schedulers import RandomProcessScheduler, StagedScheduler
from repro.protocols.protocol_f import protocol_f


def run(n, k, t, inputs, programs=None, **kwargs):
    return run_sm(
        programs or [protocol_f] * n, inputs, k, t, SV2, **kwargs
    )


class TestCrashModel:
    def test_unanimous(self):
        report = run(7, 5, 3, ["v"] * 7)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_decisions_are_own_input_or_default(self):
        n, k, t = 7, 5, 3
        inputs = list("abcabca")
        for seed in range(10):
            report = run(n, k, t, inputs,
                         scheduler=RandomProcessScheduler(seed))
            assert report.ok
            for pid, decision in report.outcome.decisions.items():
                assert decision == inputs[pid] or decision is DEFAULT

    def test_loops_until_enough_registers_written(self):
        # Stage p0 alone first: it must keep scanning (not decide early)
        # until n - t registers are written.
        n, k, t = 5, 4, 2
        report = run(
            n, k, t, [f"v{i}" for i in range(n)],
            scheduler=StagedScheduler([[0, 1, 2]], release_on_stall=True),
        )
        assert report.ok
        # p0 scanned at least twice: reads > n (one full scan is n reads)
        p0_reads = [r for r in report.result.trace.of_kind("read") if r.pid == 0]
        assert len(p0_reads) >= n

    def test_crashes_before_write_do_not_block(self):
        n, k, t = 7, 5, 3
        report = run(
            n, k, t, ["v"] * n,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_steps=0),
                2: CrashPoint(after_steps=0),
            }),
        )
        assert report.ok
        for pid in range(3, n):
            assert report.outcome.decisions[pid] == "v"

    def test_n_le_2t_branch_decides_own(self):
        # n <= 2t: a process may read r <= t registers and decide its own.
        n, k, t = 4, 4, 2  # k = n: trivial agreement, exercises the branch
        report = run(
            n, k, t, list("wxyz"),
            scheduler=StagedScheduler([[0, 1], [2], [3]],
                                      release_on_stall=True),
        )
        assert report.ok
        assert report.outcome.decisions[0] == "w"
        assert report.outcome.decisions[1] == "x"


class TestByzantineModel:
    def test_garbage_register(self):
        n, k, t = 7, 5, 3
        report = run(
            n, k, t, ["v"] * n,
            programs=[protocol_f] * (n - 1) + [garbage_writer(seed=9)],
            byzantine=[n - 1],
        )
        assert report.ok
        for pid in range(n - 1):
            assert report.outcome.decisions[pid] == "v"

    def test_lying_input(self):
        n, k, t = 7, 5, 3
        report = run(
            n, k, t, ["v"] * n,
            programs=[protocol_f] * (n - 1) + [
                with_fake_input(protocol_f, "lie")
            ],
            byzantine=[n - 1],
        )
        assert report.ok


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=4, max_value=9), st.integers(min_value=0, max_value=10**6))
def test_property_sv2_region_clean(n, seed):
    """Random runs with k > t + 1 never violate SC(k, t, SV2)."""
    rng = random.Random(seed)
    t = rng.randint(1, n - 3)
    k = rng.randint(t + 2, n - 1)
    inputs = [rng.choice(["v", "w"]) for _ in range(n)]
    report = run(
        n, k, t, inputs,
        scheduler=RandomProcessScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed),
    )
    assert report.ok, report.summary()
