"""Tests for PROTOCOL E (Lemmas 4.5 and 4.10)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import DEFAULT
from repro.core.validity import RV2, WV2
from repro.failures.byzantine_sm import garbage_writer, register_rewriter
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.runner import run_sm
from repro.shm.schedulers import (
    RandomProcessScheduler,
    RoundRobinScheduler,
    StagedScheduler,
)
from repro.protocols.protocol_e import protocol_e


def run(n, k, t, inputs, validity=RV2, programs=None, **kwargs):
    return run_sm(
        programs or [protocol_e] * n, inputs, k, t, validity, **kwargs
    )


class TestCrashModel:
    def test_unanimous(self):
        report = run(5, 2, 5, ["v"] * 5)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_mixed_inputs_at_most_two_values(self):
        for seed in range(20):
            inputs = [random.Random(seed + i).choice("ab") for i in range(6)]
            report = run(
                6, 2, 6, inputs,
                scheduler=RandomProcessScheduler(seed),
            )
            assert report.ok
            values = report.outcome.correct_decision_values()
            assert len(values) <= 2

    def test_wait_free_with_all_but_one_crashed(self):
        # t = n: even a single surviving process decides alone.
        n = 5
        report = run(
            n, 2, n, ["v"] * n,
            crash_adversary=CrashPlan({
                pid: CrashPoint(after_steps=0) for pid in range(n - 1)
            }),
        )
        assert report.ok
        assert report.outcome.decisions[n - 1] == "v"

    def test_first_completed_write_seen_by_all(self):
        # Run p0 fully first; whatever others do, everybody reads p0's
        # value, so decisions are {v0} or {default}.
        n = 5
        inputs = ["x"] + ["y"] * (n - 1)
        report = run(
            n, 2, n, inputs,
            scheduler=StagedScheduler([[0]], release_on_stall=True),
        )
        assert report.ok
        for decision in report.outcome.decisions.values():
            assert decision == "x" or decision is DEFAULT or decision == "y"
        # p0 itself saw only x (scan before others wrote)
        assert report.outcome.decisions[0] == "x"

    def test_two_distinct_decisions_realizable(self):
        # The k = 2 bound is tight: some schedule yields two values.
        n = 4
        seen = set()
        for seed in range(30):
            report = run(
                n, 2, n, ["a", "b", "b", "b"],
                scheduler=RandomProcessScheduler(seed),
            )
            seen.add(frozenset(
                "default" if v is DEFAULT else v
                for v in report.outcome.decisions.values()
            ))
        assert any(len(s) == 2 for s in seen)


class TestByzantineModel:
    def test_garbage_register_forces_default_but_agreement_holds(self):
        n = 5
        report = run(
            n, 2, 1, ["v"] * n, validity=WV2,
            programs=[protocol_e] * (n - 1) + [garbage_writer(seed=3)],
            byzantine=[n - 1],
        )
        assert report.ok

    def test_rewriter_cannot_force_three_values(self):
        n = 5
        for seed in range(10):
            report = run(
                n, 2, 1, ["a", "a", "b", "b", "x"], validity=WV2,
                programs=[protocol_e] * (n - 1) + [
                    register_rewriter(["p", "q", "r"])
                ],
                byzantine=[n - 1],
                scheduler=RandomProcessScheduler(seed),
            )
            assert report.verdicts["agreement"], report.summary()

    def test_failure_free_byzantine_model_is_wv2_clean(self):
        report = run(5, 2, 2, ["v"] * 5, validity=WV2)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10**6))
def test_property_rv2_always_clean_in_sm_cr(n, seed):
    """PROTOCOL E is correct for every t -- the whole Fig. 5 RV2 panel."""
    rng = random.Random(seed)
    t = rng.randint(1, n)
    inputs = [rng.choice(["v", "w"]) for _ in range(n)]
    report = run(
        n, 2, t, inputs,
        scheduler=RandomProcessScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed),
    )
    assert report.ok, report.summary()
