"""Edge-case tests across protocols: boundary instance shapes.

The paper's decision rules have branches that only activate in corner
geometries (``n <= 2t`` for PROTOCOL F's ``r <= t`` branch, ``n - t = 1``
views, thresholds landing exactly on integers).  Each case here pins one
such corner.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import DEFAULT
from repro.core.validity import RV1, RV2, SV2
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import run_mp, run_sm
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.echo import accept_threshold
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_f import protocol_f
from repro.shm.schedulers import StagedScheduler


class TestMinimalViews:
    def test_protocol_a_with_view_of_one(self):
        # n=3, t=2: n-t=1 -- each process may decide on its own value only
        report = run_mp(
            [ProtocolA() for _ in range(3)],
            ["v", "v", "v"], k=3, t=2, validity=RV2,
        )
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_flood_min_with_view_of_one(self):
        # t = k-1 = n-1: degenerate but legal; each decides something seen
        report = run_mp(
            [ChaudhuriKSet() for _ in range(3)],
            ["c", "a", "b"], k=3, t=2, validity=RV1,
        )
        assert report.ok

    def test_two_processes(self):
        report = run_mp(
            [ProtocolA(), ProtocolA()],
            ["v", "v"], k=2, t=1, validity=RV2,
        )
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}


class TestProtocolFSmallRBranch:
    def test_r_le_t_branch_in_region(self):
        """n <= 2t with k > t+1: the 'decides on its own input' branch
        of PROTOCOL F is reachable inside the lemma's region."""
        n, k, t = 6, 5, 3  # n = 2t, k > t+1
        report = run_sm(
            [protocol_f] * n,
            [f"v{i}" for i in range(n)],
            k, t, SV2,
            scheduler=StagedScheduler(
                [[0, 1, 2], [3], [4], [5]], release_on_stall=True
            ),
        )
        assert report.ok
        # the first three scanners saw r = 3 = t and kept their values
        for pid in (0, 1, 2):
            assert report.outcome.decisions[pid] == f"v{pid}"

    def test_exactly_t_plus_two_distinct_realizable(self):
        """PROTOCOL F's t+2 bound is tight: a staged run achieves it."""
        n, k, t = 6, 5, 3
        report = run_sm(
            [protocol_f] * n,
            [f"v{i}" for i in range(n)],
            k, t, SV2,
            scheduler=StagedScheduler(
                [[0, 1, 2], [3], [4], [5]], release_on_stall=True
            ),
        )
        assert report.ok
        assert len(report.outcome.correct_decision_values()) == t + 2


class TestThresholdBoundaries:
    def test_protocol_b_threshold_exact(self):
        """n - 2t matching is required, not n - 2t + 1: craft a run with
        exactly n - 2t matches that must decide the own value."""
        n, k, t = 5, 3, 1  # n - 2t = 3
        inputs = ["v", "v", "v", "w", "w"]
        # p0 receives exactly {p0, p1, p2, p3} -> 3 v's (= n-2t), one w
        from repro.net.schedulers import PredicateScheduler

        def allow(kernel, delivery):
            if delivery.receiver == 0:
                return delivery.sender != 4 or kernel.has_decided(0)
            return True

        report = run_mp(
            [ProtocolB() for _ in range(n)],
            inputs, k, t, SV2,
            scheduler=PredicateScheduler(allow, release_on_stall=True),
            stop_when_decided=False,
        )
        assert report.outcome.decisions[0] == "v"

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=2, max_value=200),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=8),
    )
    def test_echo_threshold_is_minimal_strict_bound(self, n, t, ell):
        """accept_threshold is the least count strictly above (n+lt)/(l+1)."""
        count = accept_threshold(n, t, ell)
        assert count * (ell + 1) > n + ell * t
        assert (count - 1) * (ell + 1) <= n + ell * t


class TestCrashAtEveryPoint:
    @pytest.mark.parametrize("sends", range(0, 11))
    def test_protocol_b_all_partial_broadcast_points(self, sends):
        """Crashing the divergent process after each possible number of
        sends never breaks SV2 (n=5, t=1)."""
        n, k, t = 5, 3, 1
        inputs = ["w"] + ["v"] * 4
        report = run_mp(
            [ProtocolB() for _ in range(n)],
            inputs, k, t, SV2,
            crash_adversary=CrashPlan({0: CrashPoint(after_sends=sends)}),
        )
        assert report.ok, (sends, report.summary())
        for pid in range(1, n):
            assert report.outcome.decisions[pid] == "v"
