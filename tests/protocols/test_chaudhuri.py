"""Tests for Chaudhuri's k-set consensus protocol (Lemma 3.1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validity import RV1
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.runner import run_mp
from repro.net.schedulers import FifoScheduler, LifoScheduler, RandomScheduler
from repro.protocols.chaudhuri import ChaudhuriKSet


def run(n, k, t, inputs, scheduler=None, crash_adversary=None):
    return run_mp(
        [ChaudhuriKSet() for _ in range(n)],
        inputs,
        k,
        t,
        RV1,
        scheduler=scheduler,
        crash_adversary=crash_adversary,
    )


class TestFailureFree:
    def test_all_decide_global_minimum_under_fifo(self):
        report = run(5, 3, 2, [4, 1, 3, 2, 5], FifoScheduler())
        assert report.ok
        # FIFO delivers p0..p(n-t-1)'s broadcasts first, min among them
        assert set(report.outcome.decisions.values()) <= {1, 2, 3, 4}

    def test_unanimous_inputs(self):
        report = run(5, 2, 1, ["v"] * 5)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_distinct_decisions_at_most_t_plus_one(self):
        for seed in range(25):
            report = run(
                7, 3, 2, [f"v{i}" for i in range(7)], RandomScheduler(seed)
            )
            assert report.ok
            assert len(report.outcome.correct_decision_values()) <= 3

    def test_string_and_int_inputs(self):
        report = run(4, 2, 1, [10, 3, 7, 3])
        assert report.ok
        assert set(report.outcome.decisions.values()) <= {3, 7, 10}


class TestWithCrashes:
    def test_tolerates_t_crashes(self):
        report = run(
            6, 3, 2,
            [f"v{i}" for i in range(6)],
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_sends=2),
            }),
        )
        assert report.ok

    def test_partial_broadcast_does_not_block(self):
        report = run(
            5, 2, 1,
            list("edcba"),
            crash_adversary=CrashPlan({0: CrashPoint(after_sends=1)}),
        )
        assert report.ok


class TestRobustness:
    def test_ignores_malformed_messages(self):
        from repro.failures.byzantine import GarbageProcess
        from repro.harness.runner import run_mp as run_mp_byz

        n = 5
        processes = [GarbageProcess(seed=2)] + [
            ChaudhuriKSet() for _ in range(n - 1)
        ]
        # run under RV1's *weaker* sibling WV2 since RV1 is unachievable
        # in Byzantine settings (Lemma 3.10); here we only check liveness
        # and robustness of parsing.
        from repro.core.validity import WV2

        report = run_mp_byz(
            processes, ["v"] * n, k=2, t=1, validity=WV2, byzantine=[0]
        )
        assert report.verdicts["termination"]
        assert report.verdicts["agreement"]

    def test_duplicate_sender_values_counted_once(self):
        # A protocol process receiving two values from the same sender
        # must not double-count; simulate via direct handler calls.
        from repro.runtime.process import Context

        class StubCtx(Context):
            def __init__(self):
                super().__init__(0, 4, 1, "z")
                self.sent = []

            def _emit_send(self, dst, payload):
                self.sent.append((dst, payload))

        ctx = StubCtx()
        process = ChaudhuriKSet()
        process.on_start(ctx)
        process.on_message(ctx, 1, ("CH-VAL", "a"))
        process.on_message(ctx, 1, ("CH-VAL", "b"))  # duplicate sender
        assert not ctx.decided  # still only 1 distinct sender counted
        process.on_message(ctx, 2, ("CH-VAL", "c"))
        process.on_message(ctx, 3, ("CH-VAL", "d"))
        assert ctx.decided


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=3, max_value=9),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_agreement_and_validity_under_random_runs(n, seed):
    """RV1 + agreement hold for every schedule/crash pattern with t < k."""
    rng = random.Random(seed)
    k = rng.randint(2, n - 1)
    t = rng.randint(1, k - 1)
    inputs = [rng.choice("abcdef") for _ in range(n)]
    report = run(
        n, k, t, inputs,
        scheduler=RandomScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed),
    )
    assert report.ok, report.summary()
