"""Tests for PROTOCOL A (Lemmas 3.7, 3.12, 3.13)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import DEFAULT
from repro.core.validity import RV2, WV2
from repro.failures.byzantine import MultiFaceProcess, MuteProcess
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.runner import run_mp
from repro.net.schedulers import FifoScheduler, RandomScheduler
from repro.protocols.protocol_a import ProtocolA, _lemma_3_7


def run(n, k, t, inputs, validity=RV2, **kwargs):
    return run_mp(
        [ProtocolA() for _ in range(n)], inputs, k, t, validity, **kwargs
    )


class TestCrashModel:
    def test_unanimous_decides_that_value(self):
        report = run(6, 3, 3, ["v"] * 6)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_mixed_inputs_fall_back_to_default(self):
        report = run(4, 2, 1, ["a", "b", "a", "b"], scheduler=FifoScheduler())
        assert report.ok
        assert DEFAULT in report.outcome.decisions.values()

    def test_at_most_two_values_in_its_region(self):
        # k=2, n=9: region t < (k-1)n/k = 4.5
        for seed in range(20):
            report = run(
                9, 2, 4,
                [random.Random(seed).choice("ab") for _ in range(9)],
                scheduler=RandomScheduler(seed),
            )
            assert report.ok

    def test_unanimity_survives_partial_broadcast_crash(self):
        report = run(
            5, 2, 2, ["v"] * 5,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_sends=1),
                1: CrashPoint(after_steps=0),
            }),
        )
        assert report.ok
        for pid in (2, 3, 4):
            assert report.outcome.decisions[pid] == "v"

    def test_region_predicate_matches_lemma(self):
        assert _lemma_3_7(9, 3, 5)       # t < 6
        assert not _lemma_3_7(9, 3, 6)   # t = (k-1)n/k
        assert _lemma_3_7(64, 2, 31)
        assert not _lemma_3_7(64, 2, 32)


class TestByzantineModel:
    def test_mute_byzantine_cannot_block(self):
        report = run(
            7, 4, 3, ["v"] * 7, validity=WV2,
            byzantine=[0],
        )
        # replace p0's behaviour with mute
        report = run_mp(
            [MuteProcess()] + [ProtocolA() for _ in range(6)],
            ["v"] * 7, 4, 3, WV2, byzantine=[0],
        )
        assert report.verdicts["termination"]
        assert report.verdicts["agreement"]

    def test_two_faced_byzantine_within_region(self):
        # Lemma 3.12 point: n=9, t=2 < n/2, k >= (7/5)+1 -> k >= 3
        n, k, t = 9, 3, 2
        byz = MultiFaceProcess(
            ProtocolA,
            {"a": "x", "b": "y"},
            lambda peer: "a" if peer < 5 else "b",
        )
        for seed in range(10):
            report = run_mp(
                [byz if pid == 0 else ProtocolA() for pid in range(n)],
                ["v"] * n, k, t, WV2,
                byzantine=[0],
                scheduler=RandomScheduler(seed),
            )
            assert report.ok, report.summary()

    def test_failure_free_byzantine_model_unanimous(self):
        # WV2 bites only in failure-free runs; check the protocol itself.
        report = run(6, 4, 2, ["w"] * 6, validity=WV2)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"w"}


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=10**6))
def test_property_rv2_region_clean(n, seed):
    """Random runs inside Lemma 3.7's region never violate SC(k,t,RV2)."""
    rng = random.Random(seed)
    k = rng.randint(2, n - 1)
    max_t = max(1, (k - 1) * n // k - (1 if (k - 1) * n % k == 0 else 0))
    if max_t < 1:
        return
    t = rng.randint(1, max_t)
    if not _lemma_3_7(n, k, t):
        return
    inputs = [rng.choice(["v", "v", "w"]) for _ in range(n)]
    report = run(
        n, k, t, inputs,
        scheduler=RandomScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed),
    )
    assert report.ok, report.summary()
