"""Tests for the ℓ-echo broadcast protocol (Lemma 3.14)."""

from fractions import Fraction

import pytest

from repro.harness.runner import run_mp
from repro.core.validity import WV2
from repro.net.schedulers import FifoScheduler, RandomScheduler
from repro.protocols.echo import (
    ECHO,
    INIT,
    LEchoEngine,
    accept_threshold,
    lemma_3_14_region,
)
from repro.runtime.process import Context, Process


class EchoUser(Process):
    """Broadcasts its input via ℓ-echo and records accepted pairs."""

    def __init__(self, ell):
        self.accepted = []
        self.engine = LEchoEngine(ell, self._on_accept)

    def _on_accept(self, ctx, origin, message):
        self.accepted.append((origin, message))
        if not ctx.decided and len(self.accepted) >= ctx.n - ctx.t:
            ctx.decide(message)

    def on_start(self, ctx):
        self.engine.broadcast(ctx, ctx.input)

    def on_message(self, ctx, sender, payload):
        self.engine.handle(ctx, sender, payload)


class TestThreshold:
    def test_strictly_above_bound(self):
        # (n + l t)/(l + 1) with n=7, t=2, l=1: 4.5 -> need 5
        assert accept_threshold(7, 2, 1) == 5
        # integer bound: n=8, t=1, l=1: 4.5 -> 5; n=9,t=3,l=2: 5 -> 6
        assert accept_threshold(9, 3, 2) == 6

    def test_region_predicate(self):
        assert lemma_3_14_region(7, 2, 1)       # 2 < 7/3
        assert not lemma_3_14_region(7, 3, 1)   # 3 >= 7/3
        assert lemma_3_14_region(7, 2, 2)       # 2 < 14/5

    def test_ell_must_be_positive(self):
        with pytest.raises(ValueError):
            LEchoEngine(0, lambda ctx, s, m: None)


class TestCorrectSender:
    def test_all_correct_accept(self):
        n, t, ell = 7, 2, 1
        processes = [EchoUser(ell) for _ in range(n)]
        _report = run_mp(
            processes, [f"m{i}" for i in range(n)], k=n - 1, t=t,
            validity=WV2, stop_when_decided=False,
        )
        for pid, process in enumerate(processes):
            origins = {origin for origin, _ in process.accepted}
            assert origins == set(range(n)), pid
            # and each correct sender's message is the genuine one
            for origin, message in process.accepted:
                assert message == f"m{origin}"

    def test_acceptance_under_random_schedules(self):
        n, t, ell = 7, 2, 2
        for seed in range(5):
            processes = [EchoUser(ell) for _ in range(n)]
            _report = run_mp(
                processes, ["m"] * n, k=n - 1, t=t, validity=WV2,
                scheduler=RandomScheduler(seed), stop_when_decided=False,
            )
            for process in processes:
                assert len({o for o, _ in process.accepted}) == n


class SplittingEchoer(Process):
    """Byzantine sender: inits different values to different peers and
    echoes inconsistently, trying to get many values accepted."""

    def __init__(self, values, max_bursts=20):
        self.values = values
        self._bursts = max_bursts

    def on_start(self, ctx):
        for dst in range(ctx.n):
            value = self.values[dst % len(self.values)]
            ctx.send(dst, (INIT, value))

    def on_message(self, ctx, sender, payload):
        # echo every candidate value for itself to everyone, trying to
        # push all of them over the threshold (bounded bursts keep the
        # run finite; an unbounded Byzantine gains nothing more here)
        if sender == ctx.pid or self._bursts <= 0:
            return
        if isinstance(payload, tuple) and payload and payload[0] == ECHO:
            self._bursts -= 1
            for dst in range(ctx.n):
                if dst == ctx.pid:
                    continue
                for value in self.values:
                    ctx.send(dst, (ECHO, ctx.pid, value))


class TestByzantineSender:
    @pytest.mark.parametrize("ell", [1, 2])
    def test_at_most_ell_values_accepted_per_sender(self, ell):
        n, t = 9, 2
        assert lemma_3_14_region(n, t, ell)
        byz = SplittingEchoer(["w1", "w2", "w3", "w4"])
        processes = [byz] + [EchoUser(ell) for _ in range(n - 1)]
        _report = run_mp(
            processes, ["m"] * n, k=n - 1, t=t, validity=WV2,
            byzantine=[0], stop_when_decided=False, max_ticks=300_000,
        )
        for process in processes[1:]:
            from_byz = [m for o, m in process.accepted if o == 0]
            assert len(from_byz) <= ell

    def test_correct_senders_still_accepted_despite_split(self):
        n, t, ell = 9, 2, 1
        byz = SplittingEchoer(["w1", "w2"])
        processes = [byz] + [EchoUser(ell) for _ in range(n - 1)]
        run_mp(
            processes, [f"m{i}" for i in range(n)], k=n - 1, t=t,
            validity=WV2, byzantine=[0], stop_when_decided=False,
            max_ticks=300_000,
        )
        for process in processes[1:]:
            origins = {o for o, _ in process.accepted}
            assert set(range(1, n)) <= origins


class TestEngineInternals:
    def make_ctx(self, n=5, t=1):
        class StubCtx(Context):
            def __init__(self):
                super().__init__(0, n, t, "x")
                self.sent = []

            def _emit_send(self, dst, payload):
                self.sent.append((dst, payload))

        return StubCtx()

    def test_echoes_only_first_init_per_sender(self):
        ctx = self.make_ctx()
        engine = LEchoEngine(1, lambda c, s, m: None)
        engine.handle(ctx, 3, (INIT, "a"))
        echoes_after_first = len(ctx.sent)
        engine.handle(ctx, 3, (INIT, "b"))
        assert len(ctx.sent) == echoes_after_first

    def test_one_vote_per_voter(self):
        accepted = []
        ctx = self.make_ctx(n=5, t=1)
        engine = LEchoEngine(1, lambda c, s, m: accepted.append((s, m)))
        threshold = accept_threshold(5, 1, 1)
        for _ in range(threshold + 3):
            engine.handle(ctx, 2, (ECHO, 4, "m"))  # same voter repeatedly
        assert not accepted

    def test_accepts_at_threshold(self):
        accepted = []
        ctx = self.make_ctx(n=5, t=1)
        engine = LEchoEngine(1, lambda c, s, m: accepted.append((s, m)))
        for voter in range(accept_threshold(5, 1, 1)):
            engine.handle(ctx, voter, (ECHO, 4, "m"))
        assert accepted == [(4, "m")]

    def test_ignores_out_of_range_origin(self):
        ctx = self.make_ctx()
        engine = LEchoEngine(1, lambda c, s, m: None)
        assert engine.handle(ctx, 1, (ECHO, 99, "m"))  # consumed, ignored
        assert engine.accepted_count() == 0

    def test_non_echo_payloads_not_consumed(self):
        ctx = self.make_ctx()
        engine = LEchoEngine(1, lambda c, s, m: None)
        assert not engine.handle(ctx, 1, ("OTHER", "m"))
        assert not engine.handle(ctx, 1, 42)
