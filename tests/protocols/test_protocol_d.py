"""Tests for PROTOCOL D (Lemma 3.16)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lemmas import z_function
from repro.core.validity import WV1
from repro.failures.byzantine import MultiFaceProcess, MuteProcess
from repro.harness.runner import run_mp
from repro.net.schedulers import LifoScheduler, RandomScheduler
from repro.protocols.protocol_d import ProtocolD


def run(n, k, t, inputs, byzantine=None, **kwargs):
    byz = dict(byzantine or {})
    processes = [byz.get(pid) or ProtocolD() for pid in range(n)]
    return run_mp(
        processes, inputs, k, t, WV1, byzantine=sorted(byz), **kwargs
    )


class TestFailureFree:
    def test_broadcasters_decide_own_values(self):
        n, t = 7, 2
        k = z_function(n, t)  # 3
        inputs = [f"v{i}" for i in range(n)]
        report = run(n, k, t, inputs)
        assert report.ok
        for pid in range(t + 1):
            assert report.outcome.decisions[pid] == inputs[pid]

    def test_others_adopt_a_broadcaster_value(self):
        n, t = 7, 2
        k = z_function(n, t)
        inputs = [f"v{i}" for i in range(n)]
        report = run(n, k, t, inputs)
        broadcaster_values = set(inputs[: t + 1])
        for pid in range(t + 1, n):
            assert report.outcome.decisions[pid] in broadcaster_values

    def test_agreement_bound_z(self):
        for seed in range(10):
            n, t = 8, 2
            k = z_function(n, t)
            inputs = [f"v{i}" for i in range(n)]
            report = run(n, k, t, inputs, scheduler=RandomScheduler(seed))
            assert report.ok
            assert len(report.outcome.correct_decision_values()) <= k

    def test_reordered_delivery(self):
        n, t = 7, 2
        k = z_function(n, t)
        report = run(n, k, t, [f"v{i}" for i in range(n)],
                     scheduler=LifoScheduler())
        assert report.ok


class TestByzantine:
    def test_mute_broadcaster_does_not_block(self):
        n, t = 7, 2
        k = z_function(n, t)
        report = run(
            n, k, t, [f"v{i}" for i in range(n)],
            byzantine={0: MuteProcess()},
        )
        assert report.verdicts["termination"]
        assert report.verdicts["agreement"]

    def test_equivocating_broadcaster_bounded_by_z(self):
        n, t = 7, 2
        k = z_function(n, t)
        # Byzantine broadcaster shows a different value to each half.
        # (Process objects are single-use: build a fresh one per run.)
        def make_byz():
            return MultiFaceProcess(
                ProtocolD,
                {"a": "wA", "b": "wB"},
                lambda peer: "a" if peer < n // 2 else "b",
            )

        for seed in range(8):
            report = run(
                n, k, t, [f"v{i}" for i in range(n)],
                byzantine={1: make_byz()},
                scheduler=RandomScheduler(seed),
            )
            assert report.verdicts["agreement"], report.summary()
            assert report.verdicts["termination"], report.summary()

    def test_echoes_never_repeat_per_broadcaster(self):
        n, t = 7, 2
        k = z_function(n, t)
        report = run(n, k, t, [f"v{i}" for i in range(n)],
                     stop_when_decided=False)
        # each correct process echoes at most once per broadcaster
        for pid in range(n):
            echo_origins = [
                r.payload[1]
                for r in report.result.trace.of_kind("send")
                if r.pid == pid and r.payload[0] == "D-ECHO" and r.peer == 0
            ]
            assert len(echo_origins) == len(set(echo_origins))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_property_wv1_region_clean(seed):
    rng = random.Random(seed)
    n = rng.randint(5, 9)
    t = rng.randint(1, n // 3) if n >= 6 else 1
    k = z_function(n, t)
    if k >= n:
        return
    inputs = [f"v{i}" for i in range(n)]
    byzantine = {}
    for pid in rng.sample(range(n), rng.randint(0, t)):
        byzantine[pid] = MuteProcess()
    report = run(
        n, k, t, inputs,
        byzantine=byzantine,
        scheduler=RandomScheduler(seed),
    )
    assert report.ok, report.summary()
