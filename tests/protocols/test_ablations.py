"""Tests for the ingredient ablations: each removed ingredient's failure
mode is exhibited, and the unmodified protocol survives the same run."""

import pytest

from repro.core.validity import RV1, SV2
from repro.core.values import DEFAULT
from repro.failures.byzantine import GarbageProcess, MultiFaceProcess
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import run_mp
from repro.net.schedulers import PredicateScheduler
from repro.protocols.ablations import (
    CredulousProcess,
    ProtocolBStrictQuorum,
    ProtocolCPlainBroadcast,
    divergent_crash_run,
    plain_broadcast_attack_run,
    protocol_f_single_scan,
)
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_c import ProtocolC


divergent_crash_setup = divergent_crash_run


class TestStrictQuorumAblation:
    def test_strict_quorum_breaks_sv2(self):
        report = divergent_crash_setup(ProtocolBStrictQuorum)
        assert not report.verdicts["validity"], report.summary()
        # the failure mode: correct processes fell back to the default
        assert DEFAULT in report.outcome.correct_decision_values()

    def test_real_protocol_b_survives_same_run(self):
        report = divergent_crash_setup(ProtocolB)
        assert report.ok, report.summary()
        for pid in range(1, 5):
            assert report.outcome.decisions[pid] == "v"


_plain_broadcast_attack = plain_broadcast_attack_run


class TestEchoLayerAblation:
    def test_plain_broadcast_breaks_agreement(self):
        report = _plain_broadcast_attack(ProtocolCPlainBroadcast)
        assert not report.verdicts["agreement"], report.summary()
        # every correct process kept its own value: 5 > k = 4
        assert len(report.outcome.correct_decision_values()) == 5

    def test_real_protocol_c_survives_same_adversary(self):
        report = _plain_broadcast_attack(lambda: ProtocolC(1))
        assert report.verdicts["agreement"], report.summary()
        assert report.verdicts["validity"], report.summary()


class TestValidationAblation:
    def test_credulous_process_crashes_on_garbage(self):
        n = 4
        processes = [GarbageProcess(seed=1)] + [
            CredulousProcess() for _ in range(n - 1)
        ]
        with pytest.raises((TypeError, IndexError, KeyError)):
            run_mp(
                processes, ["v"] * n, k=2, t=1, validity=RV1,
                byzantine=[0], stop_when_decided=False,
            )

    def test_validating_flood_min_survives_same_garbage(self):
        n = 4
        processes = [GarbageProcess(seed=1)] + [
            ChaudhuriKSet() for _ in range(n - 1)
        ]
        report = run_mp(
            processes, ["v"] * n, k=2, t=1, validity=RV1,
            byzantine=[0],
        )
        assert report.verdicts["termination"]


class TestSingleScanObservation:
    """The honest-negative ablation: no violation found for the
    single-scan PROTOCOL F variant (see module docstring)."""

    def test_search_finds_no_violation(self):
        import dataclasses

        from repro.harness.attack import search_worst_run
        from repro.protocols.base import get_spec

        base = get_spec("protocol-f@sm-cr")
        variant = dataclasses.replace(
            base,
            name="protocol-f-single-scan-probe",
            make=lambda n, k, t: protocol_f_single_scan,
        )
        result = search_worst_run(variant, 6, 4, 2, attempts=60, seed=3)
        assert result.violations_found == 0, result.summary()

    def test_decisions_stay_within_t_plus_2(self):
        from repro.core.validity import SV2 as _SV2
        from repro.harness.runner import run_sm
        from repro.shm.schedulers import StagedScheduler

        n, k, t = 6, 4, 2
        report = run_sm(
            [protocol_f_single_scan] * n,
            [f"v{i}" for i in range(n)],
            k, t, _SV2,
            scheduler=StagedScheduler([[pid] for pid in range(n)],
                                      release_on_stall=True),
        )
        assert len(report.outcome.correct_decision_values()) <= t + 2
