"""Tests for PROTOCOL C(ℓ) (Lemma 3.15)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import DEFAULT
from repro.core.validity import SV2
from repro.failures.byzantine import GarbageProcess, MultiFaceProcess, MuteProcess
from repro.harness.runner import run_mp
from repro.net.schedulers import RandomScheduler
from repro.protocols.protocol_c import (
    ProtocolC,
    best_ell,
    lemma_3_15_region,
)


def run(n, k, t, inputs, ell=None, byzantine=None, **kwargs):
    ell = ell or best_ell(n, k, t) or 1
    byz = dict(byzantine or {})
    processes = [
        byz.get(pid, None) or ProtocolC(ell) for pid in range(n)
    ]
    return run_mp(
        processes, inputs, k, t, SV2, byzantine=sorted(byz), **kwargs
    )


class TestBestEll:
    def test_matches_region_predicate(self):
        for n in (7, 9, 13):
            for k in range(2, n):
                for t in range(1, n // 2 + 1):
                    ell = best_ell(n, k, t)
                    if ell is not None:
                        assert lemma_3_15_region(n, k, t, ell)

    def test_none_outside_any_region(self):
        # k=2, n=9: needs t < 9/4 and t < l*9/(2l+1)... t=3 fails l=1
        # agreement bound (9/4=2.25), so no l works
        assert best_ell(9, 2, 3) is None

    def test_larger_ell_unlocks_larger_t(self):
        # find a point where l=1 fails but some l>1 works
        found = False
        for n in range(6, 16):
            for k in range(3, n):
                for t in range(1, n // 2):
                    if not lemma_3_15_region(n, k, t, 1):
                        ell = best_ell(n, k, t)
                        if ell is not None and ell > 1:
                            found = True
        assert found

    def test_make_raises_outside_region(self):
        from repro.protocols.base import get_spec

        spec = get_spec("protocol-c@mp-byz")
        with pytest.raises(ValueError):
            spec.make(9, 2, 4)


class TestFailureFree:
    def test_unanimous(self):
        n, k, t = 9, 4, 2
        report = run(n, k, t, ["v"] * n)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_own_value_or_default(self):
        n, k, t = 9, 4, 2
        inputs = ["a", "b"] * 4 + ["a"]
        for seed in range(8):
            report = run(n, k, t, inputs, scheduler=RandomScheduler(seed))
            assert report.ok
            for pid, decision in report.outcome.decisions.items():
                assert decision == inputs[pid] or decision is DEFAULT


class TestByzantine:
    def test_mute_byzantine(self):
        n, k, t = 9, 4, 2
        report = run(
            n, k, t, ["v"] * n,
            byzantine={0: MuteProcess(), 1: MuteProcess()},
        )
        assert report.ok
        for pid in range(2, n):
            assert report.outcome.decisions[pid] == "v"

    def test_garbage_byzantine(self):
        n, k, t = 9, 4, 2
        report = run(
            n, k, t, ["v"] * n,
            byzantine={3: GarbageProcess(seed=1)},
        )
        assert report.ok

    def test_two_faced_byzantine_cannot_break_sv2(self):
        n, k, t = 9, 4, 2
        ell = best_ell(n, k, t)

        def make_byz():
            return MultiFaceProcess(
                lambda: ProtocolC(ell),
                {"a": "x", "b": "y"},
                lambda peer: "a" if peer % 2 else "b",
            )

        for seed in range(6):
            report = run(
                n, k, t, ["v"] * n,
                byzantine={4: make_byz()},
                scheduler=RandomScheduler(seed),
            )
            assert report.ok, report.summary()
            for pid, decision in report.outcome.correct_decisions().items():
                assert decision == "v"

    def test_correct_keep_echoing_after_deciding(self):
        # Termination for all correct processes requires the decided ones
        # to keep serving echo traffic (paper Section 5 remark).
        n, k, t = 9, 4, 2
        report = run(n, k, t, ["v"] * n, byzantine={0: MuteProcess()})
        assert report.verdicts["termination"]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_property_sv2_holds_in_region(seed):
    rng = random.Random(seed)
    n = rng.randint(7, 11)
    k = rng.randint(2, n - 1)
    t = rng.randint(1, max(1, n // 3))
    if best_ell(n, k, t) is None:
        return
    inputs = ["v"] * n
    byzantine = {}
    for pid in rng.sample(range(n), rng.randint(0, t)):
        byzantine[pid] = rng.choice([
            MuteProcess(), GarbageProcess(seed=seed),
        ])
        inputs[pid] = "lie"
    report = run(
        n, k, t, inputs,
        byzantine=byzantine,
        scheduler=RandomScheduler(seed),
    )
    assert report.ok, report.summary()


class TestHigherEll:
    """Points requiring ℓ > 1: the echo bound t < ℓn/(2ℓ+1) only admits
    these budgets at larger ℓ, where the agreement bound still holds."""

    def find_ell2_point(self):
        # smallest instance where best_ell returns 2
        for n in range(7, 16):
            for k in range(3, n):
                for t in range(1, n // 2):
                    if best_ell(n, k, t) == 2:
                        return n, k, t
        raise AssertionError("no l=2 point found in range")

    def test_ell2_point_exists_and_runs_clean(self):
        n, k, t = self.find_ell2_point()
        assert not lemma_3_15_region(n, k, t, 1)  # l=1 really insufficient
        report = run(n, k, t, ["v"] * n)
        assert report.ok
        assert set(report.outcome.correct_decisions().values()) == {"v"}

    def test_ell2_with_byzantine_splitter(self):
        n, k, t = self.find_ell2_point()
        for seed in range(5):
            report = run(
                n, k, t, ["v"] * n,
                byzantine={0: GarbageProcess(seed=seed)},
                scheduler=RandomScheduler(seed),
            )
            assert report.ok, report.summary()

    def test_ell3_region_strictly_larger_in_t_for_big_k(self):
        # for large k, higher l admits larger t (the ablation bench's
        # trade-off), pinned here at one concrete instance
        n, k = 64, 16
        t_by_ell = {
            ell: max(
                (t for t in range(1, n) if lemma_3_15_region(n, k, t, ell)),
                default=0,
            )
            for ell in (1, 2, 3)
        }
        assert t_by_ell[2] > t_by_ell[1]
        assert t_by_ell[3] >= t_by_ell[2]
