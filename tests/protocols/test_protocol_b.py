"""Tests for PROTOCOL B (Lemma 3.8)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import DEFAULT
from repro.core.validity import SV2
from repro.failures.crash import CrashPlan, CrashPoint, RandomCrashes
from repro.harness.runner import run_mp
from repro.net.schedulers import FifoScheduler, LifoScheduler, RandomScheduler
from repro.protocols.protocol_b import ProtocolB, lemma_3_8


def run(n, k, t, inputs, **kwargs):
    return run_mp([ProtocolB() for _ in range(n)], inputs, k, t, SV2, **kwargs)


class TestBasics:
    def test_unanimous_correct_decide_their_value(self):
        report = run(9, 4, 3, ["v"] * 9)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_decision_is_own_input_or_default(self):
        for seed in range(15):
            inputs = [random.Random(seed * 7 + i).choice("abc") for i in range(9)]
            report = run(9, 4, 3, inputs, scheduler=RandomScheduler(seed))
            assert report.ok
            for pid, decision in report.outcome.decisions.items():
                assert decision == inputs[pid] or decision is DEFAULT

    def test_own_message_required_before_deciding(self):
        # Under LIFO the process's own broadcast can arrive late; the
        # protocol must wait for it rather than decide early.
        report = run(6, 3, 2, ["v"] * 6, scheduler=LifoScheduler())
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_unanimity_with_crashes(self):
        report = run(
            9, 4, 3, ["v"] * 9,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_sends=4),
                2: CrashPoint(after_steps=1),
            }),
        )
        assert report.ok
        for pid in range(3, 9):
            assert report.outcome.decisions[pid] == "v"

    def test_region_predicate(self):
        assert lemma_3_8(9, 4, 3)        # t < 27/8
        assert not lemma_3_8(9, 4, 4)
        assert lemma_3_8(64, 2, 15)      # t < 16
        assert not lemma_3_8(64, 2, 16)


class TestSV2Semantics:
    def test_correct_unanimity_despite_faulty_divergence(self):
        # Faulty processes start with other values but crash immediately:
        # SV2 still requires correct processes to decide v.
        n, k, t = 9, 4, 3
        inputs = ["x", "y", "z"] + ["v"] * 6
        report = run(
            n, k, t, inputs,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=0),
                1: CrashPoint(after_steps=0),
                2: CrashPoint(after_steps=0),
            }),
        )
        assert report.ok
        for pid in range(3, 9):
            assert report.outcome.decisions[pid] == "v"

    def test_divergent_faulty_messages_tolerated(self):
        # Faulty processes broadcast fully before crashing: their alien
        # values are seen but n - 2t matching still carries the day.
        n, k, t = 9, 4, 2
        inputs = ["x", "y"] + ["v"] * 7
        report = run(
            n, k, t, inputs,
            crash_adversary=CrashPlan({
                0: CrashPoint(after_steps=1),
                1: CrashPoint(after_steps=1),
            }),
        )
        assert report.ok
        for pid in range(2, 9):
            assert report.outcome.decisions[pid] == "v"


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=5, max_value=11), st.integers(min_value=0, max_value=10**6))
def test_property_sv2_region_clean(n, seed):
    rng = random.Random(seed)
    k = rng.randint(2, n - 1)
    t = rng.randint(1, n)
    if not lemma_3_8(n, k, t):
        return
    inputs = [rng.choice(["v", "w"]) for _ in range(n)]
    report = run(
        n, k, t, inputs,
        scheduler=RandomScheduler(seed),
        crash_adversary=RandomCrashes(n, t, seed=seed),
    )
    assert report.ok, report.summary()
