"""Tests for the halting-variant probe of the Section 5 open problem."""

from repro.protocols.halting import HaltingProtocolC, straggler_run


class TestStragglerRun:
    def test_halting_variant_violates_termination(self):
        report = straggler_run(halting=True)
        assert not report.verdicts["termination"]
        # the straggler is the one stuck
        assert report.outcome.n - 1 not in report.outcome.decisions

    def test_plain_protocol_c_survives_the_same_schedule(self):
        report = straggler_run(halting=False)
        assert report.ok, report.summary()

    def test_halting_variant_safe_when_it_does_decide(self):
        # agreement and validity still hold for whoever decided
        report = straggler_run(halting=True)
        assert report.verdicts["agreement"]
        assert report.verdicts["validity"]
        deciders = report.outcome.correct_decisions()
        assert set(deciders.values()) == {"v"}

    def test_halting_flag_set_after_decision(self):
        from repro.core.validity import SV2
        from repro.harness.runner import run_mp

        n, k, t = 7, 4, 1
        processes = [HaltingProtocolC(1) for _ in range(n)]
        report = run_mp(processes, ["v"] * n, k, t, SV2)
        assert report.ok
        assert all(p.halted for p in processes)
