"""Tests for the protocol registry, payload validation, and the trivial
protocol."""

import pytest

from repro.core.validity import SV1
from repro.harness.runner import run_mp, run_sm
from repro.models import Model
from repro.protocols.base import all_specs, get_spec, tagged
from repro.protocols.trivial import TrivialOwnValue, trivial_own_value_sm


class TestRegistry:
    def test_all_specs_nonempty(self):
        assert len(all_specs()) >= 20

    def test_filter_by_model(self):
        for spec in all_specs(model=Model.MP_CR):
            assert spec.model is Model.MP_CR

    def test_filter_by_validity(self):
        for spec in all_specs(validity="SV2"):
            assert spec.validity == "SV2"

    def test_get_spec_unknown(self):
        with pytest.raises(ValueError):
            get_spec("no-such-protocol")

    def test_every_model_validity_possibility_is_covered(self):
        """Every POSSIBLE classifier point has a registered protocol
        whose spec region contains it (at a sample grid)."""
        from repro.core.solvability import Solvability, classify
        from repro.core.validity import by_code

        n = 9
        for model in Model:
            specs = all_specs(model=model)
            for k in range(2, n):
                for t in range(1, n + 1):
                    for validity_code in ("SV2", "RV2", "WV2", "RV1", "WV1"):
                        validity = by_code(validity_code)
                        verdict = classify(model, validity, n, k, t)
                        if verdict.status is not Solvability.POSSIBLE:
                            continue
                        covering = [
                            s for s in specs
                            if s.solvable(n, k, t)
                            and by_code(s.validity).implies(validity)
                        ]
                        assert covering, (model, validity_code, n, k, t)

    def test_specs_have_lemma_citations(self):
        for spec in all_specs():
            assert spec.lemma

    def test_duplicate_registration_rejected(self):
        from repro.protocols.base import ProtocolSpec, register

        spec = get_spec("trivial@mp-cr")
        clone = ProtocolSpec(
            name=spec.name, title="x", model=spec.model, validity="SV1",
            lemma="-", solvable=lambda n, k, t: False, make=lambda n, k, t: None,
        )
        with pytest.raises(ValueError):
            register(clone)


class TestTagged:
    def test_accepts_well_formed(self):
        assert tagged(("VAL", "v"), "VAL", 1)
        assert tagged(("ECHO", 3, "v"), "ECHO", 2)

    def test_rejects_wrong_tag(self):
        assert not tagged(("VAL", "v"), "ECHO", 1)

    def test_rejects_wrong_arity(self):
        assert not tagged(("VAL",), "VAL", 1)
        assert not tagged(("VAL", "a", "b"), "VAL", 1)

    def test_rejects_non_tuple(self):
        assert not tagged("VAL", "VAL", 1)
        assert not tagged(None, "VAL", 1)
        assert not tagged(42, "VAL", 1)

    def test_rejects_unhashable_fields(self):
        assert not tagged(("VAL", ["list"]), "VAL", 1)


class TestTrivialProtocol:
    def test_mp_sv1_at_k_equals_n(self):
        n = 4
        report = run_mp(
            [TrivialOwnValue() for _ in range(n)],
            [f"v{i}" for i in range(n)],
            k=n, t=n, validity=SV1,
        )
        assert report.ok
        for pid in range(n):
            assert report.outcome.decisions[pid] == f"v{pid}"

    def test_sm_sv1_at_k_equals_n(self):
        n = 4
        report = run_sm(
            [trivial_own_value_sm] * n,
            [f"v{i}" for i in range(n)],
            k=n, t=n, validity=SV1,
        )
        assert report.ok

    def test_no_messages_sent(self):
        report = run_mp(
            [TrivialOwnValue() for _ in range(3)],
            list("abc"), k=3, t=3, validity=SV1,
        )
        assert report.result.message_count == 0
