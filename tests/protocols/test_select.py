"""Tests for protocol selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvability import Solvability, classify
from repro.core.validity import (
    ALL_VALIDITY_CONDITIONS,
    RV1,
    RV2,
    SV1,
    SV2,
    WV2,
    by_code,
)
from repro.models import ALL_MODELS, Model
from repro.protocols.select import (
    NoProtocolAvailable,
    candidates,
    recommend,
    solve,
)


class TestCandidates:
    def test_multiple_candidates_ordered_by_cost(self):
        # SM/CR SV2 at k > t+1 and t < (k-1)n/2k: F, sim-B and sim-C apply
        options = candidates(Model.SM_CR, SV2, 12, 6, 2)
        names = [spec.name for spec in options]
        assert "protocol-f@sm-cr" in names
        assert "sim-protocol-b@sm-cr" in names
        # native F precedes any SIMULATION
        assert names.index("protocol-f@sm-cr") < names.index(
            "sim-protocol-b@sm-cr"
        )

    def test_stronger_validity_serves_weaker(self):
        # asking for WV2 in MP/CR: RV2's PROTOCOL A qualifies
        options = candidates(Model.MP_CR, WV2, 9, 3, 4)
        assert any(spec.name.startswith("protocol-a") for spec in options)

    def test_flood_beats_echo_when_both_apply(self):
        options = candidates(Model.MP_BYZ, WV2, 9, 5, 2)
        names = [spec.name for spec in options]
        assert names and names[0].startswith("protocol-a")

    def test_empty_outside_all_regions(self):
        assert candidates(Model.MP_CR, SV1, 9, 3, 2) == []


class TestRecommend:
    def test_trivial_for_k_equals_n(self):
        spec = recommend(Model.MP_BYZ, SV1, 6, 6, 6)
        assert spec.name == "trivial@mp-byz"

    def test_impossible_message(self):
        with pytest.raises(NoProtocolAvailable, match="provably impossible"):
            recommend(Model.MP_CR, RV1, 8, 3, 3)

    def test_open_message(self):
        # MP/CR SV2 gap point
        with pytest.raises(NoProtocolAvailable, match="open problem"):
            recommend(Model.MP_CR, SV2, 16, 2, 5)

    @settings(max_examples=100, deadline=None)
    @given(
        st.sampled_from(ALL_MODELS),
        st.sampled_from(ALL_VALIDITY_CONDITIONS),
        st.integers(min_value=4, max_value=12),
        st.data(),
    )
    def test_every_possible_point_has_a_recommendation(self, model, validity, n, data):
        """Completeness: POSSIBLE per the classifier implies a concrete
        protocol exists in the registry (at the non-degenerate range)."""
        k = data.draw(st.integers(min_value=2, max_value=n - 1))
        t = data.draw(st.integers(min_value=1, max_value=n))
        if classify(model, validity, n, k, t).status is not Solvability.POSSIBLE:
            return
        spec = recommend(model, validity, n, k, t)
        assert spec.solvable(n, k, t)
        assert by_code(spec.validity).implies(validity)


class TestSolve:
    def test_end_to_end_mp(self):
        report = solve(Model.MP_CR, RV1, list("abcdefg"), k=3, t=2, seed=4)
        assert report.ok
        assert len(report.outcome.decisions) == 7

    def test_end_to_end_sm(self):
        report = solve(Model.SM_CR, RV2, ["v"] * 5, k=2, t=5, seed=4)
        assert report.ok
        assert set(report.outcome.decisions.values()) == {"v"}

    def test_with_crashes(self):
        from repro.failures.crash import CrashPlan, CrashPoint

        report = solve(
            Model.MP_CR, RV1, list("abcde"), k=3, t=2,
            crash_adversary=CrashPlan({0: CrashPoint(after_steps=0)}),
        )
        assert report.ok

    def test_impossible_raises(self):
        with pytest.raises(NoProtocolAvailable):
            solve(Model.MP_BYZ, RV1, list("abc"), k=2, t=1)
