"""End-to-end integration tests across the library's layers."""

import random

from repro.analysis.report import generate_experiments_md
from repro.core.lemmas import z_function
from repro.core.validity import RV1, WV1
from repro.failures.byzantine import MultiFaceProcess
from repro.harness.runner import run_mp
from repro.net.schedulers import RandomScheduler
from repro.protocols.protocol_d import ProtocolD
from repro.runtime.asyncio_runtime import run_async


class TestExperimentsReport:
    def test_generate_small_report(self):
        content = generate_experiments_md(
            n_analytic=12,
            n_empirical=6,
            points_per_spec=1,
            runs_per_point=4,
            seed=2,
        )
        # every figure section present
        for fig in ("Fig. 1", "Fig. 2", "Fig. 4", "Fig. 5", "Fig. 6"):
            assert fig in content
        # zero violations on the possible side
        assert " 0 violations." in content
        # all constructions demonstrated their violations
        assert "NO VIOLATION" not in content
        # closed-form summary and cost table included
        assert "Section 2.1" in content
        assert "PROTOCOL C(l)" in content
        # the open-problem probe ran and behaved as expected
        assert "termination **violated**" in content
        assert "all conditions held." in content


class TestProtocolDZAccounting:
    """Stress the Z(n, t) bound in the regime n/3 < t < n/2, where faulty
    broadcasters can get multiple values accepted."""

    def test_multiple_equivocating_broadcasters(self):
        n, t = 10, 4
        k = z_function(n, t)
        assert k == 7  # the worked example from the paper's definition

        def make_splitter(pid):
            return MultiFaceProcess(
                ProtocolD,
                {f"f{i}": f"w{pid}-{i}" for i in range(3)},
                lambda peer: f"f{peer % 3}",
            )

        for seed in range(10):
            processes = [
                make_splitter(pid) if pid in (0, 1) else ProtocolD()
                for pid in range(n)
            ]
            report = run_mp(
                processes,
                [f"v{i}" for i in range(n)],
                k, t, WV1,
                byzantine=[0, 1],
                scheduler=RandomScheduler(seed),
            )
            assert report.verdicts["termination"], report.summary()
            assert report.verdicts["agreement"], report.summary()
            assert (
                len(report.outcome.correct_decision_values()) <= k
            ), report.outcome.decisions


class TestAsyncioByzantine:
    def test_flood_min_with_mute_byzantine(self):
        from repro.core.problem import SCProblem
        from repro.core.validity import WV2
        from repro.failures.byzantine import MuteProcess
        from repro.protocols.chaudhuri import ChaudhuriKSet

        n, k, t = 6, 3, 2
        processes = [MuteProcess()] + [ChaudhuriKSet() for _ in range(n - 1)]
        result = run_async(
            processes,
            ["v"] * n,
            t=t,
            byzantine=[0],
            seed=17,
            timeout=10,
        )
        problem = SCProblem(n=n, k=k, t=t, validity=WV2)
        assert problem.satisfied_by(result.outcome)


class TestCrossLayerRoundTrip:
    def test_attack_finding_is_replayable(self):
        """A violation found by random search replays identically."""
        from repro.core.validity import RV2
        from repro.protocols.protocol_a import ProtocolA
        from repro.runtime.replay import (
            RecordingScheduler,
            ReplayScheduler,
        )

        # a schedule that splits PROTOCOL A at t = n (way outside region)
        n, k, t = 3, 2, 2
        found = None
        for seed in range(60):
            scheduler = RecordingScheduler(RandomScheduler(seed))
            report = run_mp(
                [ProtocolA() for _ in range(n)],
                ["a", "b", "c"], k, t, RV2,
                scheduler=scheduler,
            )
            if not report.ok:
                found = (report, scheduler.recording)
                break
        assert found is not None
        report, recording = found
        replayed = run_mp(
            [ProtocolA() for _ in range(n)],
            ["a", "b", "c"], k, t, RV2,
            scheduler=ReplayScheduler(recording),
        )
        assert replayed.outcome.decisions == report.outcome.decisions
        assert not replayed.ok
