"""Hypothesis-driven schedule fuzzing.

Instead of seeding a random scheduler, hypothesis directly generates the
*choice stream*: a list of integers interpreted modulo the pending-event
count.  This gives hypothesis shrinking power over schedules -- when a
protocol invariant fails, the reported counterexample is a minimal
schedule, not an opaque seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validity import RV1, RV2, SV2
from repro.harness.runner import run_mp, run_sm
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.protocols.protocol_a import ProtocolA
from repro.protocols.protocol_b import ProtocolB
from repro.protocols.protocol_e import protocol_e


class ChoiceStreamScheduler:
    """Picks the (c mod len(pending))-th oldest pending event; falls back
    to FIFO when the stream is exhausted."""

    def __init__(self, stream):
        self._stream = list(stream)
        self._index = 0

    def pick(self, kernel):
        if not kernel.pending:
            return None
        ordered = sorted(kernel.pending)
        if self._index < len(self._stream):
            choice = self._stream[self._index] % len(ordered)
            self._index += 1
        else:
            choice = 0
        return ordered[choice]


class ChoiceStreamProcessScheduler:
    """Same idea for the shared-memory kernel (picks runnable pids)."""

    def __init__(self, stream):
        self._stream = list(stream)
        self._index = 0

    def pick(self, kernel):
        runnable = sorted(kernel.runnable_pids())
        if not runnable:
            return None
        if self._index < len(self._stream):
            choice = self._stream[self._index] % len(runnable)
            self._index += 1
        else:
            choice = 0
        return runnable[choice]


choice_streams = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=0, max_size=60
)


@settings(max_examples=120, deadline=None)
@given(choice_streams)
def test_flood_min_under_arbitrary_choice_streams(stream):
    report = run_mp(
        [ChaudhuriKSet() for _ in range(4)],
        ["c", "a", "d", "b"], k=3, t=2, validity=RV1,
        scheduler=ChoiceStreamScheduler(stream),
    )
    assert report.ok, report.summary()


@settings(max_examples=120, deadline=None)
@given(choice_streams, st.sampled_from(["vvvv", "vvvw", "vwvw"]))
def test_protocol_a_under_arbitrary_choice_streams(stream, pattern):
    report = run_mp(
        [ProtocolA() for _ in range(4)],
        list(pattern), k=3, t=1, validity=RV2,
        scheduler=ChoiceStreamScheduler(stream),
    )
    assert report.ok, report.summary()


@settings(max_examples=120, deadline=None)
@given(choice_streams)
def test_protocol_b_under_arbitrary_choice_streams(stream):
    report = run_mp(
        [ProtocolB() for _ in range(5)],
        ["v"] * 5, k=3, t=1, validity=SV2,
        scheduler=ChoiceStreamScheduler(stream),
    )
    assert report.ok, report.summary()
    assert set(report.outcome.decisions.values()) == {"v"}


@settings(max_examples=120, deadline=None)
@given(choice_streams, st.sampled_from(["aaaa", "aaab", "abab"]))
def test_protocol_e_under_arbitrary_interleavings(stream, pattern):
    report = run_sm(
        [protocol_e] * 4,
        list(pattern), k=2, t=4, validity=RV2,
        scheduler=ChoiceStreamProcessScheduler(stream),
    )
    assert report.ok, report.summary()


@settings(max_examples=60, deadline=None)
@given(choice_streams)
def test_choice_stream_determinism(stream):
    """The same stream always produces the identical run."""
    def once():
        return run_mp(
            [ChaudhuriKSet() for _ in range(4)],
            ["c", "a", "d", "b"], k=3, t=2, validity=RV1,
            scheduler=ChoiceStreamScheduler(stream),
        )

    first, second = once(), once()
    assert first.outcome.decisions == second.outcome.decisions
    assert first.result.ticks == second.result.ticks


@settings(max_examples=16, deadline=None)
@given(st.lists(st.sampled_from(["v", "w"]), min_size=3, max_size=3))
def test_symmetry_reduction_preserves_findings_under_input_fuzz(inputs):
    """For every input vector (any mix of interchangeable processes) the
    symmetry-quotiented exploration finds exactly what the plain one
    does -- the quotient may only shrink the state count."""
    from repro.core.validity import by_code
    from repro.harness.exhaustive import SpecFactory, explore_mp

    factory = SpecFactory("protocol-a@mp-cr", 3, 2, 0)
    validity = by_code("RV2")
    base = explore_mp(factory, inputs, 2, 0, validity)
    sym = explore_mp(factory, inputs, 2, 0, validity, symmetry=True)
    assert base.exhausted and sym.exhausted
    assert sym.violation_kinds() == base.violation_kinds()
    assert sym.decision_sets == base.decision_sets
    assert sym.states <= base.states
    if len(set(inputs)) < len(inputs):
        assert sym.stats.symmetry
        assert sym.states < base.states


@settings(max_examples=4, deadline=None)
@given(st.sampled_from(["aaa", "aab", "abb", "bbb"]))
def test_sm_symmetry_preserves_findings_under_input_fuzz(pattern):
    from repro.core.validity import by_code
    from repro.harness.exhaustive import SpecFactory, explore_sm

    factory = SpecFactory("protocol-e@sm-cr", 3, 2, 0)
    validity = by_code("RV2")
    inputs = list(pattern)
    base = explore_sm(factory, inputs, 2, 0, validity)
    sym = explore_sm(factory, inputs, 2, 0, validity, symmetry=True)
    assert base.exhausted and sym.exhausted
    assert sym.violation_kinds() == base.violation_kinds()
    assert sym.decision_sets == base.decision_sets
    assert sym.states <= base.states
