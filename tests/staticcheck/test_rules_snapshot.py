"""SNAP rule fixtures: non-plain-data state on Process subclasses."""


class TestSnap001NonPlainState:
    def test_open_file_on_self_flagged(self, lint):
        src = """\
        class Leaky(Process):
            def __init__(self):
                super().__init__()
                self.log = open("/tmp/x", "w")
        """
        found = lint(src, rule="SNAP001")
        assert found and "file handle" in found[0].message

    def test_generator_expression_flagged(self, lint):
        src = """\
        class Leaky(Process):
            def on_start(self, ctx):
                self.pending = (v for v in ctx.values)
        """
        found = lint(src, rule="SNAP001")
        assert found and "generator" in found[0].message

    def test_bare_iterator_flagged(self, lint):
        src = """\
        class Leaky(Process):
            def on_start(self, ctx):
                self.stream = iter(ctx.values)
        """
        assert lint(src, rule="SNAP001")

    def test_threading_lock_flagged(self, lint):
        src = """\
        import threading

        class Leaky(Process):
            def __init__(self):
                self.lock = threading.Lock()
        """
        assert lint(src, rule="SNAP001")

    def test_from_import_alias_resolved(self, lint):
        src = """\
        from threading import Lock as Mutex

        class Leaky(Process):
            def __init__(self):
                self.guard = Mutex()
        """
        assert lint(src, rule="SNAP001")

    def test_random_rng_flagged(self, lint):
        src = """\
        import random

        class Leaky(Process):
            def __init__(self, seed):
                self.rng = random.Random(seed)
        """
        found = lint(src, rule="SNAP001")
        assert found and "RNG" in found[0].message

    def test_materialised_iterator_is_fine(self, lint):
        src = """\
        class Clean(Process):
            def on_start(self, ctx):
                self.values = list(ctx.values)
                self.pairs = sorted(zip(ctx.values, ctx.values))
        """
        assert not lint(src, rule="SNAP001")

    def test_plain_state_is_fine(self, lint):
        src = """\
        class Clean(Process):
            def __init__(self):
                super().__init__()
                self.seen = {}
                self.heard = set()
                self.count = 0
        """
        assert not lint(src, rule="SNAP001")

    def test_local_variable_iterator_is_fine(self, lint):
        # only *self* attributes survive into the snapshot; locals are
        # consumed within the handler and never copied
        src = """\
        class Clean(Process):
            def on_message(self, ctx, sender, payload):
                stream = iter(payload)
                self.first = next(stream, None)
        """
        assert not lint(src, rule="SNAP001")

    def test_non_process_class_out_of_scope(self, lint):
        src = """\
        class Helper:
            def __init__(self):
                self.log = open("/tmp/x", "w")
        """
        assert not lint(src, rule="SNAP001")

    def test_out_of_scope_path_ignored(self, lint):
        src = """\
        class Leaky(Process):
            def __init__(self):
                self.log = open("/tmp/x", "w")
        """
        assert not lint(src, path="analysis/fixture.py", rule="SNAP001")

    def test_noqa_suppresses(self, lint):
        src = """\
        class Leaky(Process):
            def __init__(self):
                self.log = open("/tmp/x", "w")  # repro: noqa[SNAP001]
        """
        assert not lint(src, rule="SNAP001")
