"""SARIF output: schema shape, rule table, result records."""

import json

from repro.staticcheck import all_rules
from repro.staticcheck.engine import PARSE_RULE_ID, Finding
from repro.staticcheck.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    to_sarif,
)


def make_finding():
    return Finding(
        rule_id="DET001",
        severity="error",
        path="runtime/kernel.py",
        line=12,
        col=9,
        message="call to time.time reads the wall clock",
        line_text="now = time.time()",
    )


class TestSarifDocument:
    def test_required_top_level_properties(self):
        doc = to_sarif([])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert len(doc["runs"]) == 1

    def test_driver_lists_every_rule(self):
        doc = to_sarif([])
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro.staticcheck"
        ids = [rule["id"] for rule in driver["rules"]]
        expected = [rule.rule_id for rule in all_rules()] + [PARSE_RULE_ID]
        assert ids == expected
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning",
            )

    def test_result_record_shape(self):
        doc = to_sarif([make_finding()])
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "runtime/kernel.py"
        assert location["region"] == {"startLine": 12, "startColumn": 9}

    def test_rule_index_points_at_the_rule(self):
        doc = to_sarif([make_finding()])
        driver = doc["runs"][0]["tool"]["driver"]
        (result,) = doc["runs"][0]["results"]
        assert (
            driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        )

    def test_render_is_valid_json(self):
        text = render_sarif([make_finding()])
        parsed = json.loads(text)
        assert parsed["version"] == "2.1.0"
