"""SARIF output: schema shape, rule table, result records."""

import json

from repro.staticcheck import all_rules
from repro.staticcheck.baseline import fingerprint
from repro.staticcheck.engine import (
    NOQA_RULE_ID,
    PARSE_RULE_ID,
    Finding,
    TraceStep,
)
from repro.staticcheck.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    to_sarif,
)


def make_finding():
    return Finding(
        rule_id="DET001",
        severity="error",
        path="runtime/kernel.py",
        line=12,
        col=9,
        message="call to time.time reads the wall clock",
        line_text="now = time.time()",
    )


def make_flow_finding():
    return Finding(
        rule_id="FLOW001",
        severity="error",
        path="protocols/proto.py",
        line=8,
        col=9,
        message="wall-clock time reaches a decision site",
        line_text="ctx.decide(tag)",
        trace=(
            TraceStep(
                path="protocols/helpers.py", line=4, col=12,
                note="source: time.time() [wall-clock time]",
            ),
            TraceStep(
                path="protocols/proto.py", line=7, col=15,
                note="via call to stamp()",
            ),
            TraceStep(
                path="protocols/proto.py", line=8, col=9,
                note="reaches a decision site (ctx.decide)",
            ),
        ),
    )


class TestSarifDocument:
    def test_required_top_level_properties(self):
        doc = to_sarif([])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert len(doc["runs"]) == 1

    def test_driver_lists_every_rule(self):
        doc = to_sarif([])
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro.staticcheck"
        ids = [rule["id"] for rule in driver["rules"]]
        expected = [rule.rule_id for rule in all_rules()] + [
            PARSE_RULE_ID,
            NOQA_RULE_ID,
        ]
        assert ids == expected
        assert {"FLOW001", "FLOW002", "FLOW003"} <= set(ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning",
            )

    def test_result_record_shape(self):
        doc = to_sarif([make_finding()])
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "runtime/kernel.py"
        assert location["region"] == {"startLine": 12, "startColumn": 9}

    def test_rule_index_points_at_the_rule(self):
        doc = to_sarif([make_finding()])
        driver = doc["runs"][0]["tool"]["driver"]
        (result,) = doc["runs"][0]["results"]
        assert (
            driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        )

    def test_render_is_valid_json(self):
        text = render_sarif([make_finding()])
        parsed = json.loads(text)
        assert parsed["version"] == "2.1.0"


class TestCodeFlows:
    def test_trace_becomes_a_code_flow(self):
        finding = make_flow_finding()
        doc = to_sarif([finding])
        (result,) = doc["runs"][0]["results"]
        (code_flow,) = result["codeFlows"]
        (thread_flow,) = code_flow["threadFlows"]
        locations = thread_flow["locations"]
        assert len(locations) == len(finding.trace)
        first = locations[0]["location"]
        assert (
            first["physicalLocation"]["artifactLocation"]["uri"]
            == "protocols/helpers.py"
        )
        assert first["message"]["text"].startswith("source:")
        last = locations[-1]["location"]
        assert last["physicalLocation"]["region"]["startLine"] == 8

    def test_traceless_findings_carry_no_code_flow(self):
        doc = to_sarif([make_finding()])
        (result,) = doc["runs"][0]["results"]
        assert "codeFlows" not in result

    def test_partial_fingerprint_matches_baseline_print(self):
        finding = make_flow_finding()
        doc = to_sarif([finding])
        (result,) = doc["runs"][0]["results"]
        assert result["partialFingerprints"] == {
            "reproStaticcheckV2": fingerprint(finding),
        }
