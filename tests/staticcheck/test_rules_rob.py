"""ROB rule fixtures: silent exception handling in the execution layers."""

HARNESS = "harness/fixture.py"
JOBS = "src/repro/jobs/fixture.py"
OUT_OF_SCOPE = "analysis/fixture.py"


class TestRob001BareExcept:
    def test_bare_except_flagged(self, lint):
        src = """\
        try:
            run()
        except:
            handle()
        """
        findings = lint(src, path=HARNESS, rule="ROB001")
        assert findings
        assert "bare" in findings[0].message

    def test_named_handler_with_real_body_is_fine(self, lint):
        src = """\
        try:
            run()
        except OSError as err:
            record(err)
        """
        assert not lint(src, path=HARNESS, rule="ROB001")


class TestRob001Swallowed:
    def test_pass_body_flagged(self, lint):
        src = """\
        try:
            run()
        except OSError:
            pass
        """
        findings = lint(src, path=HARNESS, rule="ROB001")
        assert findings
        assert "OSError" in findings[0].message

    def test_ellipsis_body_flagged(self, lint):
        src = """\
        try:
            run()
        except ValueError:
            ...
        """
        assert lint(src, path=HARNESS, rule="ROB001")

    def test_continue_body_flagged(self, lint):
        src = """\
        for item in items:
            try:
                run(item)
            except (KeyError, ValueError):
                continue
        """
        findings = lint(src, path=HARNESS, rule="ROB001")
        assert findings
        assert "(KeyError, ValueError)" in findings[0].message

    def test_reraise_is_fine(self, lint):
        src = """\
        try:
            run()
        except OSError:
            raise
        """
        assert not lint(src, path=HARNESS, rule="ROB001")

    def test_transforming_handler_is_fine(self, lint):
        src = """\
        try:
            run()
        except OSError as err:
            raise RuntimeError("worker lost") from err
        """
        assert not lint(src, path=HARNESS, rule="ROB001")

    def test_logging_handler_is_fine(self, lint):
        src = """\
        try:
            run()
        except OSError as err:
            events.append(str(err))
        """
        assert not lint(src, path=HARNESS, rule="ROB001")


class TestRob001Scope:
    def test_jobs_package_in_scope(self, lint):
        src = """\
        try:
            run()
        except OSError:
            pass
        """
        assert lint(src, path=JOBS, rule="ROB001")

    def test_other_packages_out_of_scope(self, lint):
        # the rule targets the execution layers only; a best-effort
        # swallow in, say, analysis rendering is not its business
        src = """\
        try:
            run()
        except OSError:
            pass
        """
        assert not lint(src, path=OUT_OF_SCOPE, rule="ROB001")


class TestRob001Noqa:
    def test_inline_suppression(self, lint):
        src = """\
        try:
            run()
        except OSError:  # repro: noqa[ROB001]
            pass
        """
        assert not lint(src, path=HARNESS, rule="ROB001")
