"""SM001 fixtures: read-modify-write hazards on register files."""


class TestSm001ReadModifyWrite:
    def test_read_then_dependent_write_warns(self, lint):
        src = """\
        def bump(regs, i):
            value = regs.read(i)
            regs.write(i, value + 1)
        """
        found = lint(src, path="shm/fixture.py", rule="SM001")
        assert found and found[0].severity == "warning"
        assert "regs" in found[0].message

    def test_current_counts_as_a_read(self, lint):
        src = """\
        def bump(regs, i):
            seen = regs.current(i)
            regs.write(i, seen)
        """
        assert lint(src, path="shm/fixture.py", rule="SM001")

    def test_independent_write_is_fine(self, lint):
        src = """\
        def publish(regs, i, value):
            old = regs.read(i)
            regs.write(i, value)
            return old
        """
        assert not lint(src, path="shm/fixture.py", rule="SM001")

    def test_different_register_files_are_fine(self, lint):
        src = """\
        def copy(src_regs, dst_regs, i):
            value = src_regs.read(i)
            dst_regs.write(i, value)
        """
        assert not lint(src, path="shm/fixture.py", rule="SM001")

    def test_write_before_read_is_fine(self, lint):
        src = """\
        def reset_then_observe(regs, i):
            regs.write(i, 0)
            value = regs.read(i)
            return value
        """
        assert not lint(src, path="shm/fixture.py", rule="SM001")

    def test_out_of_scope_path_ignored(self, lint):
        src = """\
        def bump(regs, i):
            value = regs.read(i)
            regs.write(i, value + 1)
        """
        assert not lint(src, path="analysis/fixture.py", rule="SM001")

    def test_noqa_suppresses(self, lint):
        src = """\
        def bump(regs, i):
            value = regs.read(i)
            regs.write(i, value + 1)  # repro: noqa[SM001]
        """
        assert not lint(src, path="shm/fixture.py", rule="SM001")
