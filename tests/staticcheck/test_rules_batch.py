"""BATCH001 fixtures: no per-element Python loops over the batch axis."""

BATCH_PATH = "batch/fixture.py"


class TestBatch001AxisLoop:
    def test_loop_indexing_with_loop_var_flagged(self, lint):
        src = """\
        def aggregate(decisions):
            out = []
            for i in range(len(decisions)):
                out.append(decisions[i].sum())
            return out
        """
        found = lint(src, path=BATCH_PATH, rule="BATCH001")
        assert found and "vectorize" in found[0].message

    def test_tuple_index_leading_loop_var_flagged(self, lint):
        src = """\
        def walk(faulty, n):
            for run in range(8):
                for pid in range(n):
                    touch(faulty[run, pid])
        """
        assert lint(src, path=BATCH_PATH, rule="BATCH001")

    def test_store_only_subscript_not_flagged(self, lint):
        src = """\
        def fill(out, parts):
            for i, part in enumerate(parts):
                out[i] = part.total
        """
        # ``out[i] = ...`` alone is a Store; reading ``part.total``
        # does not subscript with the loop variable.
        assert not lint(src, path=BATCH_PATH, rule="BATCH001")

    def test_loop_without_subscript_not_flagged(self, lint):
        src = """\
        def names(specs):
            for spec in specs:
                yield spec.name
        """
        assert not lint(src, path=BATCH_PATH, rule="BATCH001")

    def test_noqa_suppresses(self, lint):
        src = """\
        def report(violations, decisions):
            for i in violations:  # repro: noqa[BATCH001] -- cold path
                print(decisions[i])
        """
        assert not lint(src, path=BATCH_PATH, rule="BATCH001")

    def test_out_of_scope_paths_ignored(self, lint):
        src = """\
        def scalar_ok(reports):
            for i in range(len(reports)):
                check(reports[i])
        """
        assert not lint(src, path="harness/fixture.py", rule="BATCH001")
        # replay.py is the scalar bridge: per-run loops are its job.
        assert not lint(src, path="batch/replay.py", rule="BATCH001")

    def test_fires_on_real_engine_style_loop(self, lint):
        src = """\
        def stats(self):
            for i in np.nonzero(bad)[0]:
                conditions = judge(self.term_ok[i])
        """
        assert lint(src, path=BATCH_PATH, rule="BATCH001")
