"""Fixpoint taint propagation: sources, summaries, cleansing."""

import textwrap

from repro.staticcheck.callgraph import Program
from repro.staticcheck.flow import FlowAnalysis


def analyse(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    program = Program.load([str(tmp_path)], root=str(tmp_path))
    return program, FlowAnalysis(program).run()


def summary_of(program, analysis, qualname):
    fn = program.lookup(qualname)
    assert fn is not None, qualname
    return analysis.summary(fn)


class TestSources:
    def test_clock_read_taints_return(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        summary = summary_of(program, analysis, "m.stamp")
        assert summary.returns is not None
        assert summary.returns.kind == "clock"

    def test_aliased_clock_read_taints_return(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                from time import time as now

                def stamp():
                    return now()
            """,
        })
        summary = summary_of(program, analysis, "m.stamp")
        assert summary.returns is not None
        assert summary.returns.kind == "clock"

    def test_entropy_and_identity_sources(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import os

                def token():
                    return os.urandom(8)

                def ident(x):
                    return id(x)
            """,
        })
        assert summary_of(
            program, analysis, "m.token"
        ).returns.kind == "entropy"
        assert summary_of(
            program, analysis, "m.ident"
        ).returns.kind == "identity"

    def test_global_rng_is_source_but_seeded_rng_is_not(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import random

                def bad():
                    return random.random()

                def good(seed):
                    rng = random.Random(seed)
                    return rng.random()
            """,
        })
        assert summary_of(
            program, analysis, "m.bad"
        ).returns.kind == "rng"
        assert summary_of(program, analysis, "m.good").returns is None

    def test_order_materialisation_is_source(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                def first(values):
                    pending = set(values)
                    return list(pending)[0]
            """,
        })
        assert summary_of(
            program, analysis, "m.first"
        ).returns.kind == "order"

    def test_sorted_cleanses_order_taint(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                def first(values):
                    pending = set(values)
                    return sorted(pending)[0]
            """,
        })
        assert summary_of(program, analysis, "m.first").returns is None


class TestPropagation:
    def test_two_hop_chain_converges(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import time

                def deep():
                    return time.time()

                def middle():
                    return deep()

                def outer():
                    return middle()
            """,
        })
        summary = summary_of(program, analysis, "m.outer")
        assert summary.returns is not None
        notes = [step.note for step in summary.returns.chain]
        assert "source" in notes[0]
        assert any("deep" in note for note in notes)
        assert any("middle" in note for note in notes)

    def test_param_passthrough_composes(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                def inner(x):
                    return x

                def tag(v):
                    return inner(v)
            """,
        })
        assert 0 in summary_of(
            program, analysis, "m.inner"
        ).passthrough
        assert 0 in summary_of(program, analysis, "m.tag").passthrough

    def test_taint_through_self_attribute(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import time

                class C:
                    def start(self):
                        self.t0 = time.time()

                    def report(self):
                        return self.t0
            """,
        })
        summary = summary_of(program, analysis, "m.C.report")
        assert summary.returns is not None
        assert summary.returns.kind == "clock"

    def test_fstring_joins_taint(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import time

                def tag():
                    return f"run-{time.time()}"
            """,
        })
        assert summary_of(
            program, analysis, "m.tag"
        ).returns.kind == "clock"

    def test_unresolved_calls_do_not_propagate(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import time

                def launder(transform):
                    return transform(time.time())
            """,
        })
        # Precision over soundness: taint passed into an unknown
        # callable is dropped, never guessed at.
        assert summary_of(program, analysis, "m.launder").returns is None

    def test_unordered_return_tracked_across_calls(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                def pending(xs):
                    return set(xs)

                def pick(xs):
                    return list(pending(xs))[0]
            """,
        })
        assert summary_of(
            program, analysis, "m.pending"
        ).returns_unordered
        assert summary_of(
            program, analysis, "m.pick"
        ).returns.kind == "order"

    def test_fixpoint_terminates_on_recursion(self, tmp_path):
        program, analysis = analyse(tmp_path, {
            "m.py": """
                import time

                def ping(n):
                    if n <= 0:
                        return time.time()
                    return pong(n - 1)

                def pong(n):
                    return ping(n)
            """,
        })
        assert summary_of(
            program, analysis, "m.ping"
        ).returns.kind == "clock"
        assert analysis.rounds < 20
