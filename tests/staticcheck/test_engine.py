"""Engine mechanics: noqa parsing, scoping, occurrences, PARSE001."""

from repro.staticcheck import all_rules, check_source
from repro.staticcheck.engine import (
    PARSE_RULE_ID,
    FileContext,
    ImportMap,
    dotted_name,
)

import ast


class TestRegistry:
    def test_all_rules_are_registered_once(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert {"DET001", "DET002", "DET003", "DET004",
                "PROTO001", "PROTO002", "PROTO003", "SM001"} <= set(ids)

    def test_severities_are_valid(self):
        for rule in all_rules():
            assert rule.severity in ("error", "warning"), rule.rule_id


class TestScoping:
    SOURCE = "import time\nnow = time.time()\n"

    def test_replay_path_is_in_scope(self, lint):
        assert lint(self.SOURCE, path="runtime/fixture.py", rule="DET001")

    def test_outside_scope_is_ignored(self, lint):
        assert not lint(self.SOURCE, path="analysis/fixture.py")

    def test_scope_matches_any_path_component(self, lint):
        found = lint(
            self.SOURCE, path="src/repro/protocols/deep/x.py",
            rule="DET001",
        )
        assert found

    def test_staticcheck_lints_itself(self, lint):
        assert lint(self.SOURCE, path="staticcheck/fixture.py",
                    rule="DET001")


class TestNoqa:
    def test_blanket_noqa_suppresses_all(self, lint):
        src = """\
        import time
        now = time.time()  # repro: noqa
        """
        assert not lint(src)

    def test_named_noqa_suppresses_that_rule(self, lint):
        src = """\
        import time
        now = time.time()  # repro: noqa[DET001]
        """
        assert not lint(src)

    def test_named_noqa_does_not_suppress_others(self, lint):
        src = """\
        import time
        now = time.time()  # repro: noqa[DET003]
        """
        assert lint(src, rule="DET001")

    def test_noqa_is_line_local(self, lint):
        src = """\
        import time
        a = time.time()  # repro: noqa[DET001]
        b = time.time()
        """
        found = lint(src, rule="DET001")
        assert [f.line for f in found] == [3]

    def test_noqa_list_and_case_insensitive(self, lint):
        src = """\
        import time, random
        a = time.time()  # repro: noqa[det001, DET002]
        b = random.random()  # repro: noqa[DET001,DET002]
        """
        assert not lint(src)

    def test_noqa_list_tolerates_ragged_whitespace(self, lint):
        src = """\
        import time, random
        a = time.time()  # repro:  noqa[ DET001 ,  DET002 ]
        b = random.random()  # repro: noqa[DET002 , DET001]
        """
        assert not lint(src)

    def test_noqa_on_closing_line_of_multiline_call(self, lint):
        src = """\
        import time
        now = time.time(
        )  # repro: noqa[DET001]
        """
        assert not lint(src, rule="DET001")

    def test_noqa_on_opening_line_of_multiline_call(self, lint):
        src = """\
        import time
        now = time.time(  # repro: noqa[DET001]
        )
        """
        assert not lint(src, rule="DET001")


class TestNoqaHygiene:
    def test_unknown_rule_id_warns_and_suppresses_nothing(self, lint):
        src = """\
        import time
        now = time.time()  # repro: noqa[DET01]
        """
        found = lint(src)
        by_rule = {f.rule_id: f for f in found}
        assert "DET001" in by_rule  # the typo'd noqa did not suppress
        warning = by_rule["NOQA001"]
        assert warning.severity == "warning"
        assert "DET01" in warning.message

    def test_unknown_id_in_a_valid_list_still_suppresses_known(
        self, lint
    ):
        src = """\
        import time
        now = time.time()  # repro: noqa[DET001, DET01]
        """
        found = lint(src)
        rules = [f.rule_id for f in found]
        assert "DET001" not in rules  # the known id still works
        assert rules.count("NOQA001") == 1

    def test_known_ids_never_warn(self, lint):
        src = """\
        import time
        now = time.time()  # repro: noqa[DET001]
        x = 1  # repro: noqa
        """
        assert not lint(src, rule="NOQA001")


class TestOccurrences:
    def test_identical_lines_get_distinct_occurrences(self, lint):
        src = """\
        import time

        def f():
            x = time.time()

        def g():
            x = time.time()
        """
        found = lint(src, rule="DET001")
        assert len(found) == 2
        # both findings have the same stripped line text ...
        assert found[0].line_text == found[1].line_text
        # ... so the occurrence index is what tells them apart
        assert sorted(f.occurrence for f in found) == [0, 1]


class TestParseErrors:
    def test_syntax_error_is_a_finding_not_a_crash(self, lint):
        found = lint("def broken(:\n    pass\n")
        assert len(found) == 1
        assert found[0].rule_id == PARSE_RULE_ID
        assert found[0].severity == "error"

    def test_findings_are_sorted_and_render(self, lint):
        src = """\
        import time
        b = time.time()
        a = time.time()
        """
        found = lint(src, rule="DET001")
        assert [f.line for f in found] == [2, 3]
        rendered = found[0].render()
        assert "DET001" in rendered and "[error]" in rendered
        assert rendered.startswith("protocols/fixture.py:2:")


class TestImportMap:
    def _resolve(self, source, expr):
        tree = ast.parse(source + "\n" + expr)
        imports = ImportMap(tree)
        return imports.resolve(tree.body[-1].value)

    def test_plain_import(self):
        assert self._resolve("import time", "time.time") == "time.time"

    def test_aliased_import(self):
        assert self._resolve("import time as t", "t.time") == "time.time"

    def test_from_import(self):
        assert (
            self._resolve("from datetime import datetime", "datetime.now")
            == "datetime.datetime.now"
        )

    def test_from_import_aliased(self):
        assert (
            self._resolve("from time import time as now", "now")
            == "time.time"
        )

    def test_unknown_names_pass_through(self):
        assert self._resolve("import time", "other.thing") == "other.thing"

    def test_dotted_name_helper(self):
        node = ast.parse("a.b.c").body[0].value
        assert dotted_name(node) == "a.b.c"
        call = ast.parse("f().x").body[0].value
        assert dotted_name(call) is None


class TestFileContext:
    def test_line_text_bounds(self):
        ctx = FileContext("protocols/x.py", "a = 1\n", ast.parse("a = 1"))
        assert ctx.line_text(1) == "a = 1"
        assert ctx.line_text(0) == ""
        assert ctx.line_text(99) == ""
