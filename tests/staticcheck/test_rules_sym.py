"""SYM rule fixtures: order-sensitive iteration in canonicalization."""

SYM_PATH = "symmetry.py"


class TestSym001OrderSensitiveIteration:
    def test_tuple_of_items_flagged(self, lint):
        src = """\
        def canon(d):
            return tuple(d.items())
        """
        found = lint(src, path=SYM_PATH, rule="SYM001")
        assert found and "sorted()" in found[0].message

    def test_for_loop_over_items_flagged(self, lint):
        src = """\
        def canon(d):
            out = []
            for key, value in d.items():
                out.append((key, value))
            return out
        """
        assert lint(src, path=SYM_PATH, rule="SYM001")

    def test_list_comprehension_over_values_flagged(self, lint):
        src = """\
        def canon(d):
            return [v for v in d.values()]
        """
        assert lint(src, path=SYM_PATH, rule="SYM001")

    def test_dict_constructor_flagged(self, lint):
        src = """\
        def canon(d):
            return dict(d.items())
        """
        assert lint(src, path=SYM_PATH, rule="SYM001")

    def test_dict_comprehension_over_items_flagged(self, lint):
        src = """\
        def canon(d, perm):
            return {perm[k]: v for k, v in d.items()}
        """
        assert lint(src, path=SYM_PATH, rule="SYM001")

    def test_sorted_wrap_ok(self, lint):
        src = """\
        def canon(d):
            return tuple(sorted(d.items()))
        """
        assert not lint(src, path=SYM_PATH, rule="SYM001")

    def test_sorted_comprehension_ok(self, lint):
        src = """\
        def canon(d, perm):
            return {perm[k]: v for k, v in sorted(d.items())}
        """
        assert not lint(src, path=SYM_PATH, rule="SYM001")

    def test_order_insensitive_reducers_ok(self, lint):
        src = """\
        def probe(stored, sleep):
            return all(sleep[s] >= n for s, n in stored.items())

        def size(d):
            return len(d.keys()) + sum(d.values())

        def multiset(d):
            return Counter(d.values())
        """
        assert not lint(src, path=SYM_PATH, rule="SYM001")

    def test_set_comprehension_ok(self, lint):
        src = """\
        def owners(d):
            return {k for k in d.keys()}
        """
        assert not lint(src, path=SYM_PATH, rule="SYM001")

    def test_generator_into_list_flagged(self, lint):
        src = """\
        def canon(d):
            return list(v for v in d.values())
        """
        assert lint(src, path=SYM_PATH, rule="SYM001")

    def test_visited_path_in_scope(self, lint):
        src = """\
        def canon(d):
            return tuple(d.items())
        """
        assert lint(src, path="harness/visited.py", rule="SYM001")

    def test_out_of_scope_not_flagged(self, lint):
        src = """\
        def canon(d):
            return tuple(d.items())
        """
        assert not lint(src, path="analysis/fixture.py", rule="SYM001")

    def test_real_modules_are_clean(self):
        import pathlib

        from repro.staticcheck import check_source

        for name in ("symmetry.py", "visited.py"):
            path = (
                pathlib.Path(__file__).resolve().parents[2]
                / "src" / "repro" / "harness" / name
            )
            findings = [
                f
                for f in check_source(path.read_text(), str(path))
                if f.rule_id == "SYM001"
            ]
            assert not findings, findings
