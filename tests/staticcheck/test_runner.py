"""Runner + CLI behaviour: exit codes, formats, baseline resolution,
and the repository snapshot (src/ must be clean against the committed
baseline)."""

import json
import pathlib
import textwrap

import pytest

from repro.cli import main
from repro.staticcheck import UsageError, run_check
from repro.staticcheck.runner import render, render_text, write_baseline

REPO = pathlib.Path(__file__).resolve().parents[2]

#: Seeded violations: one per DET error rule, in scope.
BAD_PROTOCOL = textwrap.dedent(
    """\
    import time
    import random


    def pick(candidates):
        stamp = time.time()
        jitter = random.random()
        chosen = min(set(candidates))
        return chosen, stamp, jitter
    """
)

CLEAN_PROTOCOL = textwrap.dedent(
    """\
    def pick(candidates, order_key):
        return min(candidates, key=order_key)
    """
)

#: Clean file-by-file; only the interprocedural pass sees the flow
#: (the helper materialises *its caller's* set, which no single-file
#: rule can know).
LAUNDERED_PROTOCOL = textwrap.dedent(
    """\
    def arbitrary(values):
        return list(values)[0]


    class P:
        def on_message(self, ctx, msg):
            pending = set(msg)
            ctx.send(0, arbitrary(pending))
    """
)


def write_fixture(tmp_path, source, name="fixture.py"):
    pkg = tmp_path / "protocols"
    pkg.mkdir(exist_ok=True)
    target = pkg / name
    target.write_text(source)
    return target


class TestRunCheck:
    def test_seeded_violations_fail(self, tmp_path):
        write_fixture(tmp_path, BAD_PROTOCOL)
        report = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        assert report.exit_code == 1
        rules = {f.rule_id for f in report.new}
        assert {"DET001", "DET002", "DET003"} <= rules

    def test_clean_tree_passes(self, tmp_path):
        write_fixture(tmp_path, CLEAN_PROTOCOL)
        report = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        assert report.exit_code == 0 and not report.new

    def test_strict_promotes_warnings(self, tmp_path):
        write_fixture(
            tmp_path,
            "class P:\n    shared = []\n",  # DET004: warning severity
        )
        relaxed = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        strict = run_check(
            [str(tmp_path)], baseline_path=None, strict=True,
            root=str(tmp_path),
        )
        assert relaxed.exit_code == 0 and relaxed.new
        assert strict.exit_code == 1

    def test_strict_promotes_noqa_hygiene_warnings(self, tmp_path):
        write_fixture(
            tmp_path,
            "x = 1  # repro: noqa[DET999]\n",  # typo'd id: NOQA001
        )
        relaxed = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        strict = run_check(
            [str(tmp_path)], baseline_path=None, strict=True,
            root=str(tmp_path),
        )
        assert relaxed.exit_code == 0
        assert [f.rule_id for f in relaxed.new] == ["NOQA001"]
        assert strict.exit_code == 1

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError):
            run_check([str(tmp_path / "nope")], baseline_path=None)

    def test_missing_explicit_baseline_is_usage_error(self, tmp_path):
        write_fixture(tmp_path, CLEAN_PROTOCOL)
        with pytest.raises(UsageError):
            run_check(
                [str(tmp_path)],
                baseline_path=str(tmp_path / "missing.json"),
                explicit_baseline=True,
            )

    def test_missing_default_baseline_is_tolerated(self, tmp_path):
        write_fixture(tmp_path, CLEAN_PROTOCOL)
        report = run_check(
            [str(tmp_path)],
            baseline_path=str(tmp_path / "staticcheck-baseline.json"),
            explicit_baseline=False,
            root=str(tmp_path),
        )
        assert report.exit_code == 0

    def test_write_baseline_then_rerun_is_clean(self, tmp_path):
        write_fixture(tmp_path, BAD_PROTOCOL)
        baseline_path = tmp_path / "baseline.json"
        first = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        assert first.exit_code == 1
        write_baseline(first, str(baseline_path))
        second = run_check(
            [str(tmp_path)],
            baseline_path=str(baseline_path),
            explicit_baseline=True,
            root=str(tmp_path),
        )
        assert second.exit_code == 0
        assert len(second.accepted) == len(first.new)
        summary = render_text(second)
        assert "0 new errors" in summary

    def test_flow_pass_finds_laundered_nondeterminism(self, tmp_path):
        write_fixture(tmp_path, LAUNDERED_PROTOCOL)
        without = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        assert without.exit_code == 0  # per-file rules see nothing
        with_flow = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path),
            flow=True,
        )
        assert with_flow.exit_code == 1
        assert [f.rule_id for f in with_flow.new] == ["FLOW001"]
        assert with_flow.new[0].trace  # carries the full chain

    def test_flow_findings_are_baselinable(self, tmp_path):
        write_fixture(tmp_path, LAUNDERED_PROTOCOL)
        baseline_path = tmp_path / "baseline.json"
        first = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path),
            flow=True,
        )
        write_baseline(first, str(baseline_path))
        second = run_check(
            [str(tmp_path)],
            baseline_path=str(baseline_path),
            explicit_baseline=True,
            root=str(tmp_path),
            flow=True,
        )
        assert second.exit_code == 0 and not second.new

    def test_render_formats(self, tmp_path):
        write_fixture(tmp_path, BAD_PROTOCOL)
        report = run_check(
            [str(tmp_path)], baseline_path=None, root=str(tmp_path)
        )
        as_json = json.loads(render(report, "json"))
        assert as_json["exit_code"] == 1 and as_json["new"]
        as_sarif = json.loads(render(report, "sarif"))
        assert as_sarif["version"] == "2.1.0"
        assert as_sarif["runs"][0]["results"]
        with pytest.raises(UsageError):
            render(report, "yaml")


class TestSnapshot:
    """The committed tree is clean against the committed baseline."""

    def test_src_has_no_new_findings(self):
        report = run_check(
            [str(REPO / "src")],
            baseline_path=str(REPO / "staticcheck-baseline.json"),
            explicit_baseline=True,
            strict=True,
            root=str(REPO),
        )
        assert report.exit_code == 0, "\n".join(
            f.render() for f in report.new
        )
        assert not report.stale, [e.to_json() for e in report.stale]
        assert report.result.files_checked > 50

    def test_baseline_entries_all_carry_reasons(self):
        raw = json.loads(
            (REPO / "staticcheck-baseline.json").read_text()
        )
        assert raw["format"] == "repro-staticcheck-baseline/2"
        assert raw["entries"], "baseline unexpectedly empty"
        for entry in raw["entries"]:
            assert entry["reason"].strip(), entry


class TestCli:
    def test_exit_one_on_seeded_violations(self, tmp_path, capsys):
        write_fixture(tmp_path, BAD_PROTOCOL)
        code = main(["staticcheck", str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET001" in out and "new errors" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_fixture(tmp_path, CLEAN_PROTOCOL)
        code = main(["staticcheck", str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "0 new errors" in capsys.readouterr().out

    def test_exit_two_on_missing_baseline(self, tmp_path, capsys):
        write_fixture(tmp_path, CLEAN_PROTOCOL)
        code = main([
            "staticcheck", str(tmp_path),
            "--baseline", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert "staticcheck:" in capsys.readouterr().err

    def test_sarif_to_file(self, tmp_path, capsys):
        write_fixture(tmp_path, BAD_PROTOCOL)
        out_path = tmp_path / "report.sarif"
        code = main([
            "staticcheck", str(tmp_path), "--no-baseline",
            "--format", "sarif", "--out", str(out_path),
        ])
        capsys.readouterr()
        assert code == 1  # findings still gate even when writing a file
        doc = json.loads(out_path.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_flow_is_on_by_default_and_no_flow_disables(
        self, tmp_path, capsys
    ):
        write_fixture(tmp_path, LAUNDERED_PROTOCOL)
        code = main(["staticcheck", str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1 and "FLOW001" in out
        code = main([
            "staticcheck", str(tmp_path), "--no-baseline", "--no-flow",
        ])
        out = capsys.readouterr().out
        assert code == 0 and "FLOW001" not in out

    def test_flow_and_no_flow_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "staticcheck", str(tmp_path), "--flow", "--no-flow",
            ])

    def test_explain_known_rule(self, capsys):
        code = main(["staticcheck", "--explain", "FLOW001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FLOW001" in out and "source-to-sink" in out
        assert "noqa[FLOW001]" in out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        code = main(["staticcheck", "--explain", "NOPE"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown rule id" in err and "FLOW001" in err

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        from repro.staticcheck.baseline import Baseline, save_baseline

        write_fixture(tmp_path, BAD_PROTOCOL)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(Baseline(), str(baseline_path))  # start empty
        code = main([
            "staticcheck", str(tmp_path),
            "--baseline", str(baseline_path), "--write-baseline",
        ])
        out = capsys.readouterr().out
        assert code == 0 and "wrote" in out
        code = main([
            "staticcheck", str(tmp_path),
            "--baseline", str(baseline_path),
        ])
        out = capsys.readouterr().out
        assert code == 0 and "0 new errors" in out
