"""Baseline mechanics: fingerprints, round-trips, partitioning."""

import dataclasses

import pytest

import json

from repro.staticcheck.baseline import (
    FORMAT,
    FORMAT_V1,
    Baseline,
    BaselineEntry,
    fingerprint,
    fingerprint_v1,
    load_baseline,
    partition,
    save_baseline,
)
from repro.staticcheck.engine import Finding, TraceStep


def make_finding(**overrides):
    base = dict(
        rule_id="DET003",
        severity="error",
        path="protocols/x.py",
        line=10,
        col=5,
        message="min() over an unordered collection",
        line_text="winner = min(candidates)",
        occurrence=0,
    )
    base.update(overrides)
    return Finding(**base)


class TestFingerprint:
    def test_stable_under_line_drift(self):
        a = make_finding(line=10)
        b = make_finding(line=200, col=1)
        assert fingerprint(a) == fingerprint(b)

    def test_changes_when_code_changes(self):
        a = make_finding()
        b = make_finding(line_text="winner = min(others)")
        assert fingerprint(a) != fingerprint(b)

    def test_occurrence_disambiguates_duplicates(self):
        a = make_finding(occurrence=0)
        b = make_finding(occurrence=1)
        assert fingerprint(a) != fingerprint(b)

    def test_rule_and_path_matter(self):
        a = make_finding()
        assert fingerprint(a) != fingerprint(
            dataclasses.replace(a, rule_id="DET001")
        )
        assert fingerprint(a) != fingerprint(
            dataclasses.replace(a, path="protocols/y.py")
        )

    def test_v2_differs_from_v1(self):
        a = make_finding()
        assert fingerprint(a) != fingerprint_v1(a)

    def test_trace_route_is_part_of_v2_identity(self):
        step = lambda path: TraceStep(  # noqa: E731
            path=path, line=1, col=1, note="hop"
        )
        via_helpers = make_finding(
            rule_id="FLOW001",
            trace=(step("protocols/helpers.py"), step("protocols/x.py")),
        )
        via_util = make_finding(
            rule_id="FLOW001",
            trace=(step("protocols/util.py"), step("protocols/x.py")),
        )
        # Same sink line, different laundering route: goes stale.
        assert fingerprint(via_helpers) != fingerprint(via_util)
        # ...but v1 never looked at the trace, so it cannot tell.
        assert fingerprint_v1(via_helpers) == fingerprint_v1(via_util)


class TestRoundTrip:
    def test_save_load_preserves_entries(self, tmp_path):
        findings = [make_finding(), make_finding(occurrence=1)]
        reasons = {fingerprint(findings[0]): "deliberate ablation"}
        baseline = Baseline.from_findings(findings, reasons=reasons)
        path = tmp_path / "baseline.json"
        save_baseline(baseline, str(path))
        loaded = load_baseline(str(path))
        assert loaded.entries == baseline.entries
        by_print = {e.fingerprint: e.reason for e in loaded.entries}
        assert by_print[fingerprint(findings[0])] == "deliberate ablation"
        assert by_print[fingerprint(findings[1])] == ""

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else/9", "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(str(path))


def write_v1_baseline(path, findings, reason="grandfathered"):
    """Hand-roll a legacy v1 file the way the old tool wrote it."""
    payload = {
        "format": FORMAT_V1,
        "entries": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "fingerprint": fingerprint_v1(f),
                "reason": reason,
            }
            for f in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2))


class TestMigration:
    def test_v1_file_loads_and_reports_its_version(self, tmp_path):
        finding = make_finding()
        path = tmp_path / "baseline.json"
        write_v1_baseline(path, [finding])
        loaded = load_baseline(str(path))
        assert loaded.format_version == 1
        assert loaded.entries[0].fingerprint == fingerprint_v1(finding)

    def test_v1_entries_still_absorb_findings(self, tmp_path):
        finding = make_finding()
        path = tmp_path / "baseline.json"
        write_v1_baseline(path, [finding])
        loaded = load_baseline(str(path))
        new, accepted, stale = partition([finding], loaded)
        assert not new and accepted == [finding] and not stale

    def test_rewrite_migrates_prints_and_keeps_reasons(self, tmp_path):
        finding = make_finding()
        path = tmp_path / "baseline.json"
        write_v1_baseline(path, [finding], reason="known ablation")
        loaded = load_baseline(str(path))
        # What --write-baseline does: rebuild from live findings,
        # looking reasons up under the old prints.
        reasons = {e.fingerprint: e.reason for e in loaded.entries}
        migrated = Baseline.from_findings([finding], reasons=reasons)
        save_baseline(migrated, str(path))
        raw = json.loads(path.read_text())
        assert raw["format"] == FORMAT
        assert raw["entries"][0]["fingerprint"] == fingerprint(finding)
        assert raw["entries"][0]["reason"] == "known ablation"
        # And the migrated file gates identically.
        new, accepted, stale = partition(
            [finding], load_baseline(str(path))
        )
        assert not new and accepted == [finding] and not stale


class TestPartition:
    def test_no_baseline_everything_is_new(self):
        findings = [make_finding()]
        new, accepted, stale = partition(findings, None)
        assert new == findings and not accepted and not stale

    def test_baselined_finding_is_accepted(self):
        finding = make_finding()
        baseline = Baseline.from_findings([finding])
        new, accepted, stale = partition([finding], baseline)
        assert not new and accepted == [finding] and not stale

    def test_unmatched_entry_goes_stale(self):
        gone = make_finding(line_text="old = min(legacy)")
        still = make_finding()
        baseline = Baseline.from_findings([gone, still])
        new, accepted, stale = partition([still], baseline)
        assert not new
        assert accepted == [still]
        assert [e.fingerprint for e in stale] == [fingerprint(gone)]

    def test_one_entry_absorbs_one_finding(self):
        # two identical findings need two baseline entries; occurrence
        # numbering (done by the engine) is what makes that possible
        first = make_finding(occurrence=0)
        second = make_finding(occurrence=1)
        baseline = Baseline.from_findings([first])
        new, accepted, stale = partition([first, second], baseline)
        assert new == [second]
        assert accepted == [first]
        assert not stale

    def test_stale_entries_never_mask_new_findings(self):
        stale_entry = BaselineEntry(
            rule="DET001", path="runtime/z.py", fingerprint="feedfeedfeedfeed"
        )
        fresh = make_finding()
        new, accepted, stale = partition([fresh], Baseline([stale_entry]))
        assert new == [fresh]
        assert stale == [stale_entry]
