"""FLOW001/002/003: whole-program rule behaviour over fixtures."""

import textwrap

from repro.staticcheck.rules_flow import check_program


def run_flow(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return check_program([str(tmp_path)], root=str(tmp_path))


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestFlow001:
    def test_two_hop_laundering_reaches_decide(self, tmp_path):
        """The acceptance fixture: a clock read two calls deep."""
        findings = run_flow(tmp_path, {
            "protocols/helpers.py": """
                import time

                def stamp():
                    return time.time()

                def tagged(v):
                    return f"run-{v}"
            """,
            "protocols/proto.py": """
                from protocols.helpers import stamp, tagged

                class P:
                    def on_message(self, ctx, msg):
                        tag = tagged(stamp())
                        ctx.decide(tag)
            """,
        })
        flagged = by_rule(findings, "FLOW001")
        assert len(flagged) == 1
        finding = flagged[0]
        assert finding.path == "protocols/proto.py"
        assert "wall-clock" in finding.message
        # The trace walks source -> both hops -> sink, across files.
        assert len(finding.trace) == 4
        assert finding.trace[0].path == "protocols/helpers.py"
        assert finding.trace[-1].path == "protocols/proto.py"
        assert "source" in finding.trace[0].note
        assert "reaches" in finding.trace[-1].note

    def test_intra_function_flow_is_not_flow001(self, tmp_path):
        """Direct source-to-sink in one function is DET territory."""
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                import time

                class P:
                    def on_message(self, ctx, msg):
                        ctx.decide(time.time())
            """,
        })
        assert not by_rule(findings, "FLOW001")

    def test_order_taint_through_helper_into_send(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                def arbitrary(values):
                    return list(values)[0]

                class P:
                    def on_message(self, ctx, msg):
                        pending = set(msg)
                        ctx.send(0, arbitrary(pending))
            """,
        })
        flagged = by_rule(findings, "FLOW001")
        assert len(flagged) == 1
        assert "iteration order" in flagged[0].message

    def test_sorted_helper_is_clean(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                def smallest(values):
                    return sorted(values)[0]

                class P:
                    def on_message(self, ctx, msg):
                        pending = set(msg)
                        ctx.decide(smallest(pending))
            """,
        })
        assert not by_rule(findings, "FLOW001")

    def test_tainted_scheduler_pick_return(self, tmp_path):
        findings = run_flow(tmp_path, {
            "net/sched.py": """
                import random

                def roll():
                    return random.random()

                class BadScheduler:
                    def pick(self, kernel):
                        return roll()
            """,
        })
        flagged = by_rule(findings, "FLOW001")
        assert len(flagged) == 1
        assert "scheduler pick" in flagged[0].message

    def test_noqa_on_sink_line_suppresses(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                import time

                def stamp():
                    return time.time()

                class P:
                    def on_message(self, ctx, msg):
                        ctx.decide(stamp())  # repro: noqa[FLOW001]
            """,
        })
        assert not by_rule(findings, "FLOW001")


class TestFlow002:
    def test_decide_after_helper_decide(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                class P:
                    def _finish(self, ctx, v):
                        ctx.decide(v)

                    def on_message(self, ctx, msg):
                        self._finish(ctx, msg)
                        ctx.decide(msg)
            """,
        })
        flagged = by_rule(findings, "FLOW002")
        assert len(flagged) == 1
        assert any("_finish" in s.note for s in flagged[0].trace)

    def test_helper_in_loop_may_repeat(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                class P:
                    def _finish(self, ctx, v):
                        ctx.decide(v)

                    def on_message(self, ctx, msgs):
                        for m in msgs:
                            self._finish(ctx, m)
            """,
        })
        flagged = by_rule(findings, "FLOW002")
        assert len(flagged) == 1
        assert "loop" in flagged[0].message

    def test_latched_helper_is_guarded(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                class P:
                    def _finish(self, ctx, v):
                        if not self._done:
                            self._done = True
                            ctx.decide(v)

                    def on_message(self, ctx, msgs):
                        for m in msgs:
                            self._finish(ctx, m)
            """,
        })
        assert not by_rule(findings, "FLOW002")

    def test_exclusive_branches_are_clean(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                class P:
                    def _finish(self, ctx, v):
                        ctx.decide(v)

                    def on_message(self, ctx, msg):
                        if msg:
                            self._finish(ctx, msg)
                        else:
                            ctx.decide(None)
            """,
        })
        assert not by_rule(findings, "FLOW002")

    def test_purely_literal_double_decide_left_to_proto001(
        self, tmp_path
    ):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                class P:
                    def on_message(self, ctx, msg):
                        ctx.decide(msg)
                        ctx.decide(msg)
            """,
        })
        assert not by_rule(findings, "FLOW002")

    def test_transitive_helper_chain(self, tmp_path):
        findings = run_flow(tmp_path, {
            "protocols/proto.py": """
                class P:
                    def _decide_now(self, ctx, v):
                        ctx.decide(v)

                    def _finish(self, ctx, v):
                        self._decide_now(ctx, v)

                    def on_message(self, ctx, msg):
                        self._finish(ctx, msg)
                        ctx.decide(msg)
            """,
        })
        assert len(by_rule(findings, "FLOW002")) == 1


class TestFlow003:
    def test_complete_on_pending_shard(self, tmp_path):
        findings = run_flow(tmp_path, {
            "jobs/driver.py": """
                def skip_guard(store, run_id, payload):
                    for shard in store.shards(run_id, "pending"):
                        store.complete(run_id, shard.shard_id, payload)
            """,
        })
        flagged = by_rule(findings, "FLOW003")
        assert len(flagged) == 1
        assert "'pending'" in flagged[0].message
        assert len(flagged[0].trace) == 2

    def test_double_terminal_transition(self, tmp_path):
        findings = run_flow(tmp_path, {
            "jobs/driver.py": """
                def double(store, run_id, payload):
                    leased = store.lease(run_id, now=0, timeout=30)
                    for shard in leased:
                        store.complete(run_id, shard.shard_id, payload)
                        store.fail(run_id, shard.shard_id, "late")
            """,
        })
        flagged = by_rule(findings, "FLOW003")
        assert len(flagged) == 1
        assert "already transitioned" in flagged[0].message

    def test_discarded_lease_result(self, tmp_path):
        findings = run_flow(tmp_path, {
            "jobs/driver.py": """
                def discards(store, run_id):
                    store.lease(run_id, now=0, timeout=30)
            """,
        })
        flagged = by_rule(findings, "FLOW003")
        assert len(flagged) == 1
        assert "discarded" in flagged[0].message

    def test_lease_then_complete_or_fail_is_clean(self, tmp_path):
        findings = run_flow(tmp_path, {
            "jobs/driver.py": """
                def good(store, run_id, payload):
                    leased = store.lease(run_id, now=0, timeout=30)
                    for shard in leased:
                        try:
                            store.complete(
                                run_id, shard.shard_id, payload
                            )
                        except RuntimeError:
                            store.fail(run_id, shard.shard_id, "boom")
            """,
        })
        assert not by_rule(findings, "FLOW003")

    def test_unknown_origin_is_never_guessed(self, tmp_path):
        findings = run_flow(tmp_path, {
            "jobs/driver.py": """
                def handle_failure(store, run_id, shard, error):
                    store.fail(run_id, shard.shard_id, error)
            """,
        })
        assert not by_rule(findings, "FLOW003")

    def test_release_expired_shards_are_pending_again(self, tmp_path):
        findings = run_flow(tmp_path, {
            "jobs/driver.py": """
                def reaper(store, run_id, now):
                    expired = store.release_expired(run_id, now)
                    for shard_id in expired:
                        store.complete(run_id, shard_id, None)
            """,
        })
        flagged = by_rule(findings, "FLOW003")
        assert len(flagged) == 1
        assert "'pending'" in flagged[0].message

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        findings = run_flow(tmp_path, {
            "web/driver.py": """
                def unrelated(store, run_id):
                    store.complete(run_id, 3, None)
                    store.lease(run_id, now=0, timeout=30)
            """,
        })
        assert not by_rule(findings, "FLOW003")


class TestCleanProgram:
    def test_empty_program_is_clean(self, tmp_path):
        assert run_flow(tmp_path, {"m.py": "x = 1\n"}) == []
