"""Call-graph construction: module naming, lookup, call resolution."""

import textwrap

import pytest

from repro.staticcheck.callgraph import Program, module_name_for


def build(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return Program.load([str(tmp_path)], root=str(tmp_path))


class TestModuleNames:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("src/repro/jobs/store.py", "repro.jobs.store"),
            ("src/repro/runtime/__init__.py", "repro.runtime"),
            ("protocols/fixture.py", "protocols.fixture"),
            ("single.py", "single"),
        ],
    )
    def test_recovered_names(self, path, expected):
        assert module_name_for(path) == expected


class TestLookupAndResolution:
    def test_local_helper_resolves(self, tmp_path):
        program = build(tmp_path, {
            "pkg/mod.py": """
                def helper():
                    return 1

                def caller():
                    return helper()
            """,
        })
        caller = program.lookup("pkg.mod.caller")
        assert caller is not None
        call = caller.node.body[0].value
        target = program.resolve_call(caller, call)
        assert target is not None and target.qualname == "pkg.mod.helper"

    def test_cross_module_import_resolves(self, tmp_path):
        program = build(tmp_path, {
            "pkg/util.py": """
                def stamp():
                    return 0
            """,
            "pkg/main.py": """
                from pkg.util import stamp

                def run():
                    return stamp()
            """,
        })
        run = program.lookup("pkg.main.run")
        call = run.node.body[0].value
        target = program.resolve_call(run, call)
        assert target is not None and target.qualname == "pkg.util.stamp"

    def test_module_alias_resolves(self, tmp_path):
        program = build(tmp_path, {
            "pkg/util.py": "def stamp():\n    return 0\n",
            "pkg/main.py": """
                import pkg.util as u

                def run():
                    return u.stamp()
            """,
        })
        run = program.lookup("pkg.main.run")
        call = run.node.body[0].value
        target = program.resolve_call(run, call)
        assert target is not None and target.qualname == "pkg.util.stamp"

    def test_reexport_chased_through_package_init(self, tmp_path):
        program = build(tmp_path, {
            "pkg/__init__.py": "from pkg.impl import core\n",
            "pkg/impl.py": "def core():\n    return 7\n",
            "app.py": """
                from pkg import core

                def run():
                    return core()
            """,
        })
        run = program.lookup("app.run")
        call = run.node.body[0].value
        target = program.resolve_call(run, call)
        assert target is not None and target.qualname == "pkg.impl.core"

    def test_self_method_resolves_through_base(self, tmp_path):
        program = build(tmp_path, {
            "pkg/base.py": """
                class Base:
                    def shared(self):
                        return 1
            """,
            "pkg/child.py": """
                from pkg.base import Base

                class Child(Base):
                    def go(self):
                        return self.shared()
            """,
        })
        go = program.lookup("pkg.child.Child.go")
        call = go.node.body[0].value
        target = program.resolve_call(go, call)
        assert target is not None
        assert target.qualname == "pkg.base.Base.shared"

    def test_dynamic_dispatch_is_opaque(self, tmp_path):
        program = build(tmp_path, {
            "pkg/mod.py": """
                def run(callback, obj):
                    callback()
                    obj.method()
                    return getattr(obj, "x")()
            """,
        })
        run = program.lookup("pkg.mod.run")
        calls = [stmt.value for stmt in run.node.body[:2]]
        for call in calls:
            assert program.resolve_call(run, call) is None

    def test_syntax_error_files_are_skipped(self, tmp_path):
        program = build(tmp_path, {
            "ok.py": "def fine():\n    return 1\n",
            "broken.py": "def broken(:\n",
        })
        assert program.lookup("ok.fine") is not None
        assert "broken" not in program.modules

    def test_paths_are_root_relative(self, tmp_path):
        program = build(tmp_path, {
            "pkg/mod.py": "def f():\n    return 1\n",
        })
        assert "pkg/mod.py" in program.by_path
