"""DET rule fixtures: positive, negative, and noqa cases per rule."""


class TestDet001WallClock:
    def test_time_time_flagged(self, lint):
        assert lint("import time\nt = time.time()\n", rule="DET001")

    def test_aliased_module_still_flagged(self, lint):
        assert lint("import time as t\nnow = t.monotonic()\n",
                    rule="DET001")

    def test_from_import_flagged(self, lint):
        src = """\
        from time import perf_counter
        t0 = perf_counter()
        """
        assert lint(src, rule="DET001")

    def test_datetime_now_flagged(self, lint):
        src = """\
        import datetime
        stamp = datetime.datetime.now()
        """
        assert lint(src, rule="DET001")

    def test_sleep_is_fine(self, lint):
        # time.sleep affects pacing, not replayed values
        assert not lint("import time\ntime.sleep(0)\n", rule="DET001")

    def test_unrelated_time_attribute_is_fine(self, lint):
        # a local object that merely *has* a .time() method
        src = """\
        def f(kernel):
            return kernel.time()
        """
        assert not lint(src, rule="DET001")

    def test_noqa_suppresses(self, lint):
        src = """\
        import time
        t = time.time()  # repro: noqa[DET001]
        """
        assert not lint(src, rule="DET001")


class TestDet001AliasEvasion:
    """Regressions for laundering a clock read through aliases."""

    def test_from_import_alias(self, lint):
        src = """\
        from time import time as now
        t = now()
        """
        assert lint(src, rule="DET001")

    def test_module_rebound_to_local_name(self, lint):
        src = """\
        import time
        _t = time
        x = _t.time()
        """
        assert lint(src, rule="DET001")

    def test_bound_function_alias(self, lint):
        src = """\
        import time
        clock = time.time
        x = clock()
        """
        assert lint(src, rule="DET001")

    def test_innocent_local_named_like_alias_is_fine(self, lint):
        src = """\
        def f(clock):
            return clock()
        """
        assert not lint(src, rule="DET001")


class TestDet002GlobalRandom:
    def test_module_level_call_flagged(self, lint):
        assert lint("import random\nx = random.random()\n", rule="DET002")

    def test_aliased_call_flagged(self, lint):
        assert lint("import random as rnd\nx = rnd.randint(0, 1)\n",
                    rule="DET002")

    def test_from_import_flagged(self, lint):
        assert lint("from random import shuffle\n", rule="DET002")

    def test_seeded_instance_is_fine(self, lint):
        src = """\
        import random
        rng = random.Random(42)
        x = rng.random()
        """
        assert not lint(src, rule="DET002")

    def test_from_import_random_class_is_fine(self, lint):
        src = """\
        from random import Random
        rng = Random(7)
        """
        assert not lint(src, rule="DET002")

    def test_aliased_from_import_flagged(self, lint):
        src = """\
        from random import random as roll
        x = roll()
        """
        assert lint(src, rule="DET002")

    def test_module_rebound_to_local_name(self, lint):
        src = """\
        import random
        rnd = random
        x = rnd.random()
        """
        assert lint(src, rule="DET002")

    def test_system_random_is_flagged_as_unseedable(self, lint):
        # SystemRandom reads OS entropy; seeding it is a no-op, so it
        # is not an acceptable "seeded instance".
        src = """\
        import random
        r = random.SystemRandom()
        x = r.random()
        """
        found = lint(src, rule="DET002")
        assert found
        assert "SystemRandom" in found[0].message

    def test_noqa_suppresses(self, lint):
        src = """\
        import random
        x = random.random()  # repro: noqa[DET002]
        """
        assert not lint(src, rule="DET002")


class TestDet003UnorderedPick:
    def test_min_over_set_literal_name(self, lint):
        src = """\
        def f(xs):
            s = set(xs)
            return min(s)
        """
        assert lint(src, rule="DET003")

    def test_min_over_dict_values(self, lint):
        src = """\
        def f(d):
            return min(d.values())
        """
        assert lint(src, rule="DET003")

    def test_min_with_key_is_fine(self, lint):
        src = """\
        def f(d, order_key):
            return min(d.values(), key=order_key)
        """
        assert not lint(src, rule="DET003")

    def test_min_over_list_is_fine(self, lint):
        src = """\
        def f(xs):
            ys = list(xs)
            return min(ys)
        """
        assert not lint(src, rule="DET003")

    def test_next_iter_over_set(self, lint):
        src = """\
        def f(xs):
            s = {x for x in xs}
            return next(iter(s))
        """
        assert lint(src, rule="DET003")

    def test_set_pop_flagged(self, lint):
        src = """\
        def f(xs):
            s = set(xs)
            return s.pop()
        """
        assert lint(src, rule="DET003")

    def test_list_pop_is_fine(self, lint):
        src = """\
        def f(xs):
            stack = list(xs)
            return stack.pop()
        """
        assert not lint(src, rule="DET003")

    def test_multi_unpack_from_set_flagged(self, lint):
        src = """\
        def f(xs):
            s = frozenset(xs)
            a, b = s
            return a
        """
        assert lint(src, rule="DET003")

    def test_singleton_unpack_is_fine(self, lint):
        # order-insensitive: the canonical fix used in protocol_a.py
        src = """\
        def f(xs):
            s = set(xs)
            (only,) = s
            return only
        """
        assert not lint(src, rule="DET003")

    def test_set_operations_propagate(self, lint):
        src = """\
        def f(a, b):
            s = set(a) | set(b)
            return min(s)
        """
        assert lint(src, rule="DET003")

    def test_rebinding_to_ordered_clears_taint(self, lint):
        src = """\
        def f(xs):
            s = set(xs)
            s = sorted(s)
            return min(s)
        """
        assert not lint(src, rule="DET003")

    def test_tracking_is_per_scope(self, lint):
        src = """\
        def makes_a_set(xs):
            s = set(xs)
            return sorted(s)

        def unrelated(s):
            return min(s)
        """
        assert not lint(src, rule="DET003")

    def test_noqa_suppresses(self, lint):
        src = """\
        def f(d):
            return max(d.values())  # repro: noqa[DET003]
        """
        assert not lint(src, rule="DET003")


class TestDet004MutableClassState:
    def test_mutable_class_attribute_warns(self, lint):
        src = """\
        class P:
            inbox = []
        """
        found = lint(src, rule="DET004")
        assert found and found[0].severity == "warning"

    def test_factory_call_warns(self, lint):
        src = """\
        class P:
            cache = dict()
        """
        assert lint(src, rule="DET004")

    def test_instance_state_is_fine(self, lint):
        src = """\
        class P:
            def __init__(self):
                self.inbox = []
        """
        assert not lint(src, rule="DET004")

    def test_constants_and_dunders_exempt(self, lint):
        src = """\
        class P:
            TAGS = {"A-VAL"}
            __slots__ = ["x"]
        """
        assert not lint(src, rule="DET004")

    def test_out_of_scope_for_staticcheck_package(self, lint):
        # DET004 does not apply to the linter's own package
        src = """\
        class P:
            registry = {}
        """
        assert not lint(src, path="staticcheck/fixture.py", rule="DET004")
