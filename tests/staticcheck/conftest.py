"""Shared helpers for the staticcheck suite.

Rules are path-scoped, so fixtures are linted under fake paths whose
components put them in (or out of) scope -- ``protocols/fixture.py``
is on the replay path, ``analysis/fixture.py`` is not.
"""

import textwrap

import pytest

from repro.staticcheck import check_source

PROTO_PATH = "protocols/fixture.py"


@pytest.fixture
def lint():
    """lint(source, path=..., rule=...) -> findings (optionally filtered)."""

    def _lint(source, path=PROTO_PATH, rule=None):
        findings = check_source(textwrap.dedent(source), path)
        if rule is not None:
            findings = [f for f in findings if f.rule_id == rule]
        return findings

    return _lint
