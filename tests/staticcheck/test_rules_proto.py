"""PROTO rule fixtures: decide-once paths, spec claims, unclaimed classes."""


class TestProto001DecideOnce:
    def test_sequential_decides_flagged(self, lint):
        src = """\
        def on_message(self, ctx, sender, payload):
            ctx.decide(payload)
            ctx.decide(payload)
        """
        assert lint(src, rule="PROTO001")

    def test_decide_then_return_is_fine(self, lint):
        src = """\
        def on_message(self, ctx, sender, payload):
            if payload == "fast":
                ctx.decide(payload)
                return
            ctx.decide("v0")
        """
        assert not lint(src, rule="PROTO001")

    def test_exclusive_branches_are_fine(self, lint):
        src = """\
        def on_message(self, ctx, sender, payload):
            if payload:
                ctx.decide(payload)
            else:
                ctx.decide("v0")
        """
        assert not lint(src, rule="PROTO001")

    def test_fallthrough_branch_then_decide_flagged(self, lint):
        src = """\
        def on_message(self, ctx, sender, payload):
            if payload:
                ctx.decide(payload)
            ctx.decide("v0")
        """
        assert lint(src, rule="PROTO001")

    def test_decide_in_loop_fallthrough_flagged(self, lint):
        src = """\
        def drain(self, ctx, queue):
            for item in queue:
                ctx.decide(item)
        """
        found = lint(src, rule="PROTO001")
        assert found and "loop" in found[0].message

    def test_decide_then_break_is_fine(self, lint):
        src = """\
        def drain(self, ctx, queue):
            for item in queue:
                ctx.decide(item)
                break
        """
        assert not lint(src, rule="PROTO001")

    def test_yield_decide_then_return_is_fine(self, lint):
        # generator-style SM protocol: `yield Decide(..); return` ends
        # the path, so a decide on the other branch is unreachable
        src = """\
        def protocol(ctx):
            if ctx.fast:
                yield Decide(ctx.value)
                return
            yield Decide("v0")
            return
        """
        assert not lint(src, rule="PROTO001")

    def test_flag_guard_latch_is_fine(self, lint):
        # the `if not done: done = True; decide(..)` latch fires at most
        # once even inside a loop -- the idiom simulation.py relies on
        src = """\
        def run(ctx, ticks):
            reported = False
            for tick in ticks:
                if not reported:
                    reported = True
                    ctx.decide(tick)
        """
        assert not lint(src, rule="PROTO001")

    def test_noqa_suppresses(self, lint):
        src = """\
        def on_message(self, ctx, sender, payload):
            ctx.decide(payload)
            ctx.decide(payload)  # repro: noqa[PROTO001]
        """
        assert not lint(src, rule="PROTO001")


class TestProto002SpecClaims:
    def test_matching_claim_is_clean(self, lint):
        src = """\
        from repro.models import Model
        from repro.protocols.base import ProtocolSpec, register

        SPEC = register(ProtocolSpec(
            name="protocol-a@mp-cr",
            title="PROTOCOL A",
            model=Model.MP_CR,
            validity="RV2",
            lemma="Lemma 3.7",
            solvable=lambda n, k, t: True,
            make=lambda n, k, t: None,
        ))
        """
        assert not lint(src, rule="PROTO002")

    def test_wrong_validity_flagged(self, lint):
        src = """\
        from repro.models import Model
        from repro.protocols.base import ProtocolSpec

        SPEC = ProtocolSpec(
            name="protocol-a@mp-cr",
            model=Model.MP_CR,
            validity="SV2",
            lemma="Lemma 3.7",
        )
        """
        found = lint(src, rule="PROTO002")
        assert found and "validity" in found[0].message

    def test_wrong_model_flagged(self, lint):
        src = """\
        from repro.models import Model
        from repro.protocols.base import ProtocolSpec

        SPEC = ProtocolSpec(
            name="protocol-a@mp-cr",
            model=Model.SM_CR,
            validity="RV2",
            lemma="Lemma 3.7",
        )
        """
        found = lint(src, rule="PROTO002")
        assert found and "Model.SM_CR" in found[0].message

    def test_unknown_spec_name_flagged(self, lint):
        src = """\
        from repro.protocols.base import ProtocolSpec

        SPEC = ProtocolSpec(
            name="protocol-z@mp-cr",
            validity="RV2",
            lemma="Lemma 9.9",
        )
        """
        found = lint(src, rule="PROTO002")
        assert found and "claimed-regions" in found[0].message

    def test_non_literal_claim_flagged(self, lint):
        src = """\
        from repro.protocols.base import ProtocolSpec

        NAME = "protocol-a@mp-cr"
        SPEC = ProtocolSpec(name=NAME, validity="RV2", lemma="Lemma 3.7")
        """
        found = lint(src, rule="PROTO002")
        assert found and "literal" in found[0].message


class TestProto003UnclaimedProcess:
    def test_unclaimed_subclass_warns(self, lint):
        src = """\
        from repro.runtime.process import Process

        class MysteryProtocol(Process):
            pass
        """
        found = lint(src, rule="PROTO003")
        assert found and found[0].severity == "warning"
        assert "MysteryProtocol" in found[0].message

    def test_claimed_subclass_is_clean(self, lint):
        src = """\
        from repro.runtime.process import Process

        class ProtocolA(Process):
            pass
        """
        assert not lint(src, rule="PROTO003")

    def test_non_process_class_ignored(self, lint):
        src = """\
        class Helper:
            pass
        """
        assert not lint(src, rule="PROTO003")

    def test_out_of_scope_path_ignored(self, lint):
        src = """\
        from repro.runtime.process import Process

        class TestDouble(Process):
            pass
        """
        assert not lint(src, path="testing/fixture.py", rule="PROTO003")
