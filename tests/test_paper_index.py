"""Tests for the structured paper index and the Section 2.1 summary."""

import pytest

from repro.analysis.summary import SUMMARY, render_summary, variant
from repro.core.lemmas import ALL_LEMMAS
from repro.core.regions import region_map
from repro.core.solvability import Solvability
from repro.core.validity import by_code
from repro.models import ALL_MODELS, Model
from repro.paper import (
    CITATION,
    CLAIMED_REGIONS,
    FIGURES,
    LEMMA_INDEX,
    PROTOCOLS,
    artifact,
    claimed_protocol_symbols,
    claimed_region,
    claimed_region_by_spec,
    render_index,
)


class TestPaperIndex:
    def test_citation_names_authors(self):
        for name in ("De Prisco", "Malkhi", "Reiter"):
            assert name in CITATION

    def test_all_artifacts_resolve_to_code(self):
        for entry in FIGURES + PROTOCOLS:
            assert entry.resolve() is not None

    def test_artifact_lookup(self):
        entry = artifact("protocol a")
        assert entry.symbol == "ProtocolA"
        with pytest.raises(ValueError):
            artifact("Theorem 1")

    def test_lemma_index_matches_lemma_registry(self):
        registry_ids = {e.lemma_id for e in ALL_LEMMAS}
        index_ids = set(LEMMA_INDEX)
        # every registered lemma is indexed (3.14 is indexed but lives in
        # the echo module rather than the region registry)
        assert registry_ids <= index_ids

    def test_lemma_kinds_agree_with_registry(self):
        by_id = {}
        for entry in ALL_LEMMAS:
            by_id.setdefault(entry.lemma_id, entry.kind)
        for lemma_id, (kind, _module) in LEMMA_INDEX.items():
            if lemma_id in by_id:
                assert by_id[lemma_id] == kind, lemma_id

    def test_lemma_index_modules_import(self):
        import importlib

        for _lemma, (_kind, module) in LEMMA_INDEX.items():
            importlib.import_module(module)

    def test_render_index(self):
        text = render_index()
        assert "PROTOCOL A" in text
        assert "Lemma 3.16" in text
        assert "repro.protocols.protocol_d" in text


class TestClaimedRegions:
    """repro.paper.CLAIMED_REGIONS is the single source of truth the
    PROTO002 lint rule checks specs against; here it is cross-checked
    against the live protocol registry in both directions."""

    def test_every_registered_spec_is_claimed(self):
        from repro.protocols.base import all_specs

        for spec in all_specs():
            claim = claimed_region_by_spec(spec.name)
            assert claim is not None, spec.name
            assert claim.model_attr == spec.model.name, spec.name
            assert claim.validity == spec.validity, spec.name
            assert claim.lemma == spec.lemma, spec.name

    def test_every_claim_names_a_registered_spec(self):
        from repro.protocols.base import get_spec

        for claim in CLAIMED_REGIONS:
            spec = get_spec(claim.spec_name)
            assert spec.model is claim.model, claim.spec_name

    def test_claim_table_has_no_duplicate_specs(self):
        names = [claim.spec_name for claim in CLAIMED_REGIONS]
        assert len(names) == len(set(names))

    def test_lookup_by_class(self):
        from repro.protocols.protocol_a import ProtocolA

        claims = claimed_region(ProtocolA)
        assert len(claims) == 3
        assert {c.spec_name for c in claims} == {
            "protocol-a@mp-cr", "protocol-a-wv2@mp-cr", "protocol-a@mp-byz",
        }

    def test_lookup_by_spec_name_and_symbol(self):
        (by_name,) = claimed_region("chaudhuri@mp-cr")
        assert by_name.lemma == "Lemma 3.1"
        assert by_name.model is Model.MP_CR
        by_symbol = claimed_region("ChaudhuriKSet")
        assert by_name in by_symbol

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError):
            claimed_region("NoSuchProtocol")

    def test_claimed_symbols_cover_the_registry(self):
        from repro.protocols.base import all_specs

        symbols = claimed_protocol_symbols()
        for spec in all_specs():
            (claim,) = claimed_region(spec.name)
            assert claim.protocol in symbols


class TestSummaryTable:
    def test_all_24_variants_present(self):
        assert len(SUMMARY) == 24
        keys = {(e.model, e.validity) for e in SUMMARY}
        assert len(keys) == 24

    def test_variant_lookup(self):
        entry = variant(Model.SM_CR, "rv2")
        assert entry.gap == "none"
        assert "any t" in entry.possible

    def test_citations_exist_in_lemma_registry(self):
        known = {e.lemma_id for e in ALL_LEMMAS}
        for entry in SUMMARY:
            for cite in entry.possibility_cites + entry.impossibility_cites:
                assert cite in known, (entry.model, entry.validity, cite)

    @pytest.mark.parametrize("n", [8, 12, 16])
    def test_gap_none_means_no_open_points(self, n):
        for entry in SUMMARY:
            if entry.gap != "none":
                continue
            region = region_map(entry.model, by_code(entry.validity), n)
            assert region.count(Solvability.OPEN) == 0, (
                entry.model, entry.validity, n
            )

    @pytest.mark.parametrize("n", [8, 12, 16])
    def test_gapped_variants_have_open_points_somewhere(self, n):
        # "small"/"substantial"/"isolated" gaps: open points exist for at
        # least one of the sampled n (isolated points need k | n).
        for entry in SUMMARY:
            if entry.gap == "none":
                continue
            counts = [
                region_map(entry.model, by_code(entry.validity), m).count(
                    Solvability.OPEN
                )
                for m in (8, 12, 16)
            ]
            assert any(c > 0 for c in counts), (entry.model, entry.validity)

    def test_no_possibility_means_barren_region(self):
        for entry in SUMMARY:
            if entry.possible != "-":
                continue
            region = region_map(entry.model, by_code(entry.validity), 10)
            assert region.count(Solvability.POSSIBLE) == 0

    def test_no_impossibility_means_full_region(self):
        for entry in SUMMARY:
            if entry.impossible != "-":
                continue
            region = region_map(entry.model, by_code(entry.validity), 10)
            assert region.count(Solvability.POSSIBLE) == len(region.grid)

    def test_render_groups_by_model(self):
        text = render_summary()
        for model in ALL_MODELS:
            assert f"--- {model} ---" in text
        assert "Z(n, t)" in text
