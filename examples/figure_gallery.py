#!/usr/bin/env python
"""Figure gallery: regenerate every paper figure into ``figures/``.

Writes, for each of the paper's models, the six-panel region figure as
both text (terminal-style, like the benches produce) and SVG (brick /
honeycomb hatching like the paper's own panels), plus the Fig. 1 lattice
and the Section 2.1 summary table.

Run:  python examples/figure_gallery.py [--n 64] [--outdir figures]
"""

import argparse
import pathlib

from repro.analysis.figures import FIGURE_BY_MODEL, render_figure
from repro.analysis.lattice import render_lattice
from repro.analysis.summary import render_summary
from repro.analysis.svg import figure_svg
from repro.models import ALL_MODELS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--outdir", default="figures")
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(exist_ok=True)

    (outdir / "fig1_lattice.txt").write_text(render_lattice() + "\n")
    print(f"wrote {outdir}/fig1_lattice.txt")

    for model in ALL_MODELS:
        number = FIGURE_BY_MODEL[model]
        slug = model.shorthand.replace("/", "-").lower()

        text_path = outdir / f"fig{number}_{slug}.txt"
        text_path.write_text(render_figure(model, n=args.n))
        print(f"wrote {text_path}")

        svg_path = outdir / f"fig{number}_{slug}.svg"
        svg_path.write_text(figure_svg(model, n=args.n))
        print(f"wrote {svg_path}")

    (outdir / "summary.txt").write_text(render_summary() + "\n")
    print(f"wrote {outdir}/summary.txt")


if __name__ == "__main__":
    main()
