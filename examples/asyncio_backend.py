#!/usr/bin/env python
"""Running the same protocol objects over real asyncio concurrency.

The deterministic kernel is the reference substrate; this example shows
the identical protocol classes running over ``asyncio`` tasks and queues
(one task per process, seeded delivery jitter), and checks the same
SC conditions on the result.  Useful as a sanity bridge from the
simulator to "real" concurrent code.

Run:  python examples/asyncio_backend.py
"""

import time

from repro import RV1, SCProblem
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import run_mp
from repro.protocols.chaudhuri import ChaudhuriKSet
from repro.runtime.asyncio_runtime import run_async

N, K, T = 8, 3, 2


def main() -> None:
    inputs = [f"ticket-{i:03d}" for i in range(N)]
    crash = CrashPlan({
        0: CrashPoint(after_sends=4),
        5: CrashPoint(after_steps=0),
    })
    problem = SCProblem(n=N, k=K, t=T, validity=RV1)

    print(f"== {problem} ==")

    started = time.perf_counter()
    deterministic = run_mp(
        [ChaudhuriKSet() for _ in range(N)], inputs, K, T, RV1,
        crash_adversary=crash,
    )
    kernel_ms = (time.perf_counter() - started) * 1000
    print(f"deterministic kernel : {deterministic.outcome.decisions} "
          f"({kernel_ms:.1f} ms)")
    assert deterministic.ok

    started = time.perf_counter()
    concurrent = run_async(
        [ChaudhuriKSet() for _ in range(N)], inputs, t=T,
        crash_adversary=crash, seed=42, timeout=30,
    )
    async_ms = (time.perf_counter() - started) * 1000
    print(f"asyncio backend      : {concurrent.outcome.decisions} "
          f"({async_ms:.1f} ms)")
    assert problem.satisfied_by(concurrent.outcome)

    print("\nBoth backends satisfy termination, agreement (<= "
          f"{K} values) and RV1; the asyncio run is slower but exercises "
          "genuine task interleaving.")


if __name__ == "__main__":
    main()
