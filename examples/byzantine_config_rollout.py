#!/usr/bin/env python
"""Scenario: picking rollout configurations in a Byzantine fleet.

A fleet of 9 replica servers must converge on a *small set* of
configuration versions to roll out.  Running several versions at once is
acceptable (canarying), running many is not -- classic k-set consensus.
Up to t = 2 replicas may be compromised (Byzantine).

Two sub-scenarios:

* **Safety-critical flag** (SV2): if all honest replicas already agree on
  a version, that version must win, even against compromised replicas --
  PROTOCOL C(l), the l-echo hardened quorum protocol.
* **Bootstrap shortlist** (WV1): any small shortlist will do as long as
  honest-only fleets never invent versions -- PROTOCOL D, cheaper and
  tolerant of larger k.

Run:  python examples/byzantine_config_rollout.py
"""

from repro import Model, classify, by_code
from repro.core.lemmas import z_function
from repro.failures.byzantine import GarbageProcess, MultiFaceProcess
from repro.harness.runner import run_mp
from repro.net.schedulers import RandomScheduler
from repro.protocols.protocol_c import ProtocolC, best_ell
from repro.protocols.protocol_d import ProtocolD

FLEET = 9
COMPROMISED = 2  # t


def scenario_unanimous_fleet() -> None:
    """All honest replicas want v2.3.1; two compromised replicas push a
    poisoned build, equivocating to different halves of the fleet."""
    print("== Scenario 1: safety-critical flag (SV2, PROTOCOL C) ==")
    k = 4
    ell = best_ell(FLEET, k, COMPROMISED)
    verdict = classify(Model.MP_BYZ, by_code("SV2"), FLEET, k, COMPROMISED)
    print(f"  SC(k={k}, t={COMPROMISED}, SV2) in MP/Byz: {verdict}; l = {ell}")

    def poisoned():
        return MultiFaceProcess(
            lambda: ProtocolC(ell),
            {"east": "v9.9.9-poisoned", "west": "v0.0.0-rollback"},
            lambda peer: "east" if peer < FLEET // 2 else "west",
        )

    inputs = ["v2.3.1"] * FLEET
    inputs[3] = "nominally-v2.3.1"  # what the attacker claims to hold
    inputs[7] = "nominally-v2.3.1"
    processes = [
        poisoned() if pid in (3, 7) else ProtocolC(ell)
        for pid in range(FLEET)
    ]
    report = run_mp(
        processes, inputs, k=k, t=COMPROMISED, validity=by_code("SV2"),
        byzantine=[3, 7], scheduler=RandomScheduler(seed=2026),
    )
    honest = report.outcome.correct_decisions()
    print(f"  honest replicas decided: {sorted(set(map(str, honest.values())))}")
    assert report.ok
    assert all(v == "v2.3.1" for v in honest.values()), honest
    print("  -> the unanimous honest version won despite equivocation\n")


def scenario_bootstrap_shortlist() -> None:
    """Fresh fleet, every replica proposes its own candidate build; a
    shortlist of Z(n, t) versions is acceptable."""
    print("== Scenario 2: bootstrap shortlist (WV1, PROTOCOL D) ==")
    k = z_function(FLEET, COMPROMISED)
    verdict = classify(Model.MP_BYZ, by_code("WV1"), FLEET, k, COMPROMISED)
    print(f"  Z(n={FLEET}, t={COMPROMISED}) = {k}; classifier: {verdict}")

    inputs = [f"build-{pid:02d}" for pid in range(FLEET)]
    processes = [
        GarbageProcess(seed=5) if pid == 8 else ProtocolD()
        for pid in range(FLEET)
    ]
    report = run_mp(
        processes, inputs, k=k, t=COMPROMISED, validity=by_code("WV1"),
        byzantine=[8], scheduler=RandomScheduler(seed=7),
    )
    shortlist = report.outcome.correct_decision_values()
    print(f"  shortlist ({len(shortlist)} <= k={k}): {sorted(map(str, shortlist))}")
    assert report.ok
    print("  -> a bounded shortlist emerged despite a babbling replica\n")


def main() -> None:
    scenario_unanimous_fleet()
    scenario_bootstrap_shortlist()


if __name__ == "__main__":
    main()
