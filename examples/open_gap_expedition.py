#!/usr/bin/env python
"""Expedition into an open gap of the paper.

MP/CR with SV2 has a gap between PROTOCOL B's region (t < (k-1)n/2k)
and Lemma 3.6's impossibility (t >= kn/(2k+1)).  Whether SC(k, t, SV2)
is solvable there is open.  This example gathers *evidence* at one gap
point with the library's three investigation tools:

1. the classifier confirms the point is genuinely OPEN;
2. adversarial search hammers PROTOCOL B there (it is outside B's
   proven region -- does it happen to survive anyway?);
3. exhaustive exploration of a scaled-down analogue checks every
   schedule at tiny n.

Nothing here settles the open problem; the point is to show how far
executable evidence can go.

Run:  python examples/open_gap_expedition.py
"""

from repro import Model, SV2, classify, Solvability
from repro.harness.attack import search_worst_run
from repro.harness.exhaustive import explore_mp
from repro.protocols.base import get_spec
from repro.protocols.protocol_b import ProtocolB

N, K = 16, 2
GAP_T = 5  # region boundary: t < 4; impossibility: t >= 6.4 -> 7


def confirm_open() -> None:
    print(f"== 1. The point: SC(k={K}, t={GAP_T}, SV2), MP/CR, n={N} ==")
    verdict = classify(Model.MP_CR, SV2, N, K, GAP_T)
    print(f"  classifier: {verdict} -- {verdict.note}")
    assert verdict.status is Solvability.OPEN
    below = classify(Model.MP_CR, SV2, N, K, 3)
    above = classify(Model.MP_CR, SV2, N, K, 7)
    print(f"  one step below the gap (t=3): {below}")
    print(f"  one step above the gap (t=7): {above}\n")


def hammer_protocol_b() -> None:
    print("== 2. Adversarial search against PROTOCOL B at the gap point ==")
    spec = get_spec("protocol-b@mp-cr")
    print(f"  B's own region contains (k={K}, t={GAP_T})? "
          f"{spec.solvable(N, K, GAP_T)}")
    result = search_worst_run(spec, N, K, GAP_T, attempts=150, seed=42)
    print(f"  {result.summary()}")
    if result.violations_found:
        print("  -> B specifically fails here; the gap question is about")
        print("     whether ANY protocol can do better.\n")
    else:
        print("  -> B survived this search; evidence, not proof, that the")
        print("     gap might close on the possible side for k=2.\n")


def scaled_down_exhaustive() -> None:
    print("== 3. Exhaustive check of a scaled-down analogue (n=4) ==")
    # same geometry: k=2; B's region t < n/4 = 1, so t=1 is the gap edge
    result = explore_mp(
        lambda: [ProtocolB() for _ in range(4)],
        ["v", "v", "w", "w"], k=2, t=1, validity=SV2,
        max_states=60_000,
    )
    print(f"  runs={result.runs} states={result.states} "
          f"exhausted={result.exhausted}")
    print(f"  violations: {len(result.violations)}")
    print(f"  max distinct decisions: {result.max_distinct_decisions}")
    status = "no schedule breaks B here" if result.all_ok else \
        "a schedule breaking B exists"
    print(f"  -> {status} (t at the edge of B's region, n=4)")


def main() -> None:
    confirm_open()
    hammer_protocol_b()
    scaled_down_exhaustive()


if __name__ == "__main__":
    main()
