#!/usr/bin/env python
"""Region explorer: render any of the paper's figure panels from the CLI.

Examples:

    python examples/region_explorer.py                       # Fig. 2, all panels, n=64
    python examples/region_explorer.py --model SM/Byz --n 32
    python examples/region_explorer.py --validity WV2 --point 5 20
"""

import argparse

from repro import ALL_VALIDITY_CONDITIONS, Model, by_code, classify
from repro.analysis.figures import FIGURE_BY_MODEL, panel_csv, render_panel
from repro.core.regions import region_map


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="MP/CR",
        help="model shorthand: MP/CR, MP/Byz, SM/CR, SM/Byz",
    )
    parser.add_argument(
        "--validity", default=None,
        help="one of SV1 SV2 RV1 RV2 WV1 WV2 (default: all six panels)",
    )
    parser.add_argument("--n", type=int, default=64, help="number of processes")
    parser.add_argument(
        "--csv", action="store_true",
        help="emit the frontier series as CSV instead of the text panel",
    )
    parser.add_argument(
        "--point", type=int, nargs=2, metavar=("K", "T"), default=None,
        help="classify a single (k, t) point with lemma citations",
    )
    args = parser.parse_args()

    model = Model.from_shorthand(args.model)
    conditions = (
        [by_code(args.validity)] if args.validity else list(ALL_VALIDITY_CONDITIONS)
    )

    if args.point:
        k, t = args.point
        for validity in conditions:
            verdict = classify(model, validity, args.n, k, t)
            print(
                f"SC(k={k}, t={t}, {validity.code}) in {model} "
                f"(n={args.n}): {verdict}"
                + (f" -- {verdict.note}" if verdict.note else "")
            )
        return

    print(f"Reproducing Fig. {FIGURE_BY_MODEL[model]} ({model}, n={args.n})\n")
    for validity in conditions:
        region = region_map(model, validity, args.n)
        if args.csv:
            print(f"# {model} / {validity.code}")
            print(panel_csv(region))
        else:
            print(render_panel(region))
            print()


if __name__ == "__main__":
    main()
