#!/usr/bin/env python
"""Scenario: wait-free candidate narrowing over shared memory.

Worker threads of a scheduler share a memory segment (SWMR registers).
Each worker proposes a node for a placement decision; the group must
narrow to at most two candidates *without ever waiting for each other*
-- any number of workers may be preempted forever (t = n).

PROTOCOL E does exactly this (Lemma 4.5: SC(k, t, RV2) for k >= 2 and
any t, wait-free).  When at most t workers can stall and k > t + 1 is
acceptable, PROTOCOL F upgrades the guarantee to SV2: if all live
workers agree, their choice wins.

Run:  python examples/shared_memory_shortlist.py
"""

from repro import Model, RV2, SV2, classify
from repro.core.values import DEFAULT
from repro.failures.crash import CrashPlan, CrashPoint
from repro.harness.runner import run_sm
from repro.protocols.protocol_e import protocol_e
from repro.protocols.protocol_f import protocol_f
from repro.shm.schedulers import RandomProcessScheduler

WORKERS = 6


def scenario_wait_free_narrowing() -> None:
    print("== Scenario 1: wait-free narrowing (PROTOCOL E, k=2, t=n) ==")
    verdict = classify(Model.SM_CR, RV2, WORKERS, 2, WORKERS)
    print(f"  SC(k=2, t={WORKERS}, RV2) in SM/CR: {verdict}")

    proposals = ["node-a", "node-a", "node-b", "node-a", "node-b", "node-a"]
    # five of six workers stall forever at various points
    stalls = CrashPlan({
        0: CrashPoint(after_steps=1),
        1: CrashPoint(after_steps=3),
        2: CrashPoint(after_steps=0),
        3: CrashPoint(after_steps=5),
        4: CrashPoint(after_steps=2),
    })
    report = run_sm(
        [protocol_e] * WORKERS, proposals, k=2, t=WORKERS, validity=RV2,
        crash_adversary=stalls,
        scheduler=RandomProcessScheduler(seed=13),
    )
    survivors = report.outcome.correct_decisions()
    pretty = {
        pid: ("<fallback>" if value is DEFAULT else value)
        for pid, value in survivors.items()
    }
    print(f"  surviving workers decided: {pretty}")
    assert report.ok
    print("  -> the lone survivor decided without waiting for anyone\n")


def scenario_quorum_preference() -> None:
    print("== Scenario 2: quorum preference (PROTOCOL F, k > t+1) ==")
    k, t = 4, 2
    verdict = classify(Model.SM_CR, SV2, WORKERS, k, t)
    print(f"  SC(k={k}, t={t}, SV2) in SM/CR: {verdict}")

    proposals = ["node-c"] * WORKERS  # live workers unanimous
    report = run_sm(
        [protocol_f] * WORKERS, proposals, k=k, t=t, validity=SV2,
        crash_adversary=CrashPlan({5: CrashPoint(after_steps=0)}),
        scheduler=RandomProcessScheduler(seed=99),
    )
    decisions = report.outcome.correct_decision_values()
    print(f"  decisions: {sorted(map(str, decisions))}")
    assert report.ok
    assert decisions == {"node-c"}
    print("  -> unanimity among live workers is preserved (SV2)\n")


def main() -> None:
    scenario_wait_free_narrowing()
    scenario_quorum_preference()


if __name__ == "__main__":
    main()
