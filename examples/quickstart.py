#!/usr/bin/env python
"""Quickstart: classify a problem instance, run a protocol, inspect a run.

This walks the three layers of the library:

1. the analytic layer -- ``classify`` answers whether ``SC(k, t, C)`` is
   solvable in a model, citing the paper's lemmas;
2. the protocol layer -- registered protocols run on the deterministic
   simulator and are checked against termination/agreement/validity;
3. the adversary layer -- crafted schedules reproduce the paper's
   impossibility runs.

Run:  python examples/quickstart.py
"""

from repro import (
    Model,
    RV1,
    RV2,
    classify,
    get_spec,
    run_spec,
)
from repro.adversary.constructions import set_overflow_run
from repro.failures.crash import CrashPlan, CrashPoint


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Where is the problem solvable?
    # ------------------------------------------------------------------
    print("== Solvability queries ==")
    for (model, validity, n, k, t) in [
        (Model.MP_CR, RV1, 64, 5, 4),    # Chaudhuri's region: t < k
        (Model.MP_CR, RV1, 64, 5, 5),    # the tight impossibility
        (Model.SM_CR, RV2, 64, 2, 64),   # PROTOCOL E: wait-free, any t
        (Model.MP_BYZ, RV1, 64, 10, 1),  # RV1 hopeless under Byzantine
    ]:
        verdict = classify(model, validity, n, k, t)
        print(f"  SC(k={k}, t={t}, {validity.code}) in {model}: {verdict}")

    # ------------------------------------------------------------------
    # 2. Run k-set consensus among 7 processes, 2 of which may crash.
    # ------------------------------------------------------------------
    print("\n== Running Chaudhuri's protocol (n=7, k=3, t=2) ==")
    spec = get_spec("chaudhuri@mp-cr")
    inputs = ["paris", "tokyo", "oslo", "lima", "cairo", "quito", "bonn"]
    report = run_spec(
        spec, n=7, k=3, t=2, inputs=inputs,
        crash_adversary=CrashPlan({
            0: CrashPoint(after_sends=3),   # crashes mid-broadcast
            1: CrashPoint(after_steps=0),   # never takes a step
        }),
    )
    print(f"  inputs:    {inputs}")
    print(f"  faulty:    {sorted(report.outcome.faulty)}")
    print(f"  decisions: {report.outcome.decisions}")
    print(f"  verdicts:  {report.summary()}")
    assert report.ok

    # ------------------------------------------------------------------
    # 3. Reproduce an impossibility run: flood-min with t >= k.
    # ------------------------------------------------------------------
    print("\n== An impossibility run (t >= k, Lemma 3.2's territory) ==")
    result = set_overflow_run(n=6, k=2, t=2)
    print(f"  {result.summary()}")
    print(f"  decisions: {result.report.outcome.decisions}")
    assert result.demonstrates_violation


if __name__ == "__main__":
    main()
