#!/usr/bin/env python
"""Verification lab: exhaustive schedules, adversarial search, diagrams.

Three ways to gain confidence in (or break) a protocol beyond sampled
sweeps:

1. **Exhaustive exploration** -- enumerate *every* delivery order of a
   tiny instance; the paper's lemmas quantify over all runs, and for
   small n so can we.
2. **Adversarial search** -- hunt for the worst run at a given point,
   inside the region (must find nothing) and past the frontier (finds
   the predicted break).
3. **Space-time diagrams** -- render the found counterexample the way
   the paper draws its proof runs (Fig. 3).

Run:  python examples/verification_lab.py
"""

from repro.analysis.spacetime import render_spacetime
from repro.core.validity import RV2
from repro.harness.attack import search_worst_run
from repro.harness.exhaustive import crash_patterns, explore_mp
from repro.protocols.base import get_spec
from repro.protocols.protocol_a import ProtocolA


def exhaustive_all_schedules() -> None:
    print("== 1. Exhaustive exploration: PROTOCOL A, n=3, k=2, t=1 ==")
    result = explore_mp(
        lambda: [ProtocolA() for _ in range(3)],
        ["v", "v", "w"], k=2, t=1, validity=RV2,
    )
    print(f"  complete runs explored : {result.runs}")
    print(f"  kernel states expanded : {result.states}")
    print(f"  exhaustive             : {result.exhausted}")
    print(f"  violations             : {len(result.violations)}")
    pretty_sets = sorted(
        sorted(str(value) for value in decided)
        for decided in result.decision_sets
    )
    print(f"  decision sets seen     : {pretty_sets}")
    assert result.all_ok

    print("\n  ... and across every single-crash pattern:")
    total = 0
    for plan in crash_patterns(3, 1, max_sends=3):
        sub = explore_mp(
            lambda: [ProtocolA() for _ in range(3)],
            ["v", "v", "w"], k=2, t=1, validity=RV2,
            crash_adversary=plan,
        )
        assert sub.all_ok
        total += sub.runs
    print(f"  {total} runs, all satisfying SC(2, 1, RV2)\n")


def adversarial_search() -> None:
    print("== 2. Adversarial search: PROTOCOL B ==")
    spec = get_spec("protocol-b@mp-cr")
    inside = search_worst_run(spec, 9, 4, 3, attempts=120, seed=0)
    print(f"  inside region : {inside.summary()}")
    assert inside.violations_found == 0

    outside = search_worst_run(
        spec, 9, 2, 4, attempts=400, seed=0, stop_on_violation=True
    )
    print(f"  past frontier : {outside.summary()}")
    assert outside.violations_found > 0
    return outside


def show_counterexample(outside) -> None:
    print("\n== 3. The counterexample, as a space-time diagram ==")
    report = outside.best_report
    print(render_spacetime(
        report.result.trace, report.outcome.n, max_rows=40
    ))
    print(f"\n  decisions: {report.outcome.decisions}")


def main() -> None:
    exhaustive_all_schedules()
    outside = adversarial_search()
    show_counterexample(outside)


if __name__ == "__main__":
    main()
