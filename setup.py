"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
the legacy ``pip install -e .`` path (setuptools develop mode), which
does not require building a wheel.
"""

from setuptools import setup

setup()
